"""Tests for repro.fl.partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.partition import (
    dirichlet_partition,
    iid_partition,
    partition_label_histograms,
    quantity_skew_partition,
    shard_partition,
)


def assert_exact_cover(shards, num_samples):
    """Every sample index appears in exactly one shard."""
    combined = np.concatenate(shards)
    assert len(combined) == num_samples
    assert set(combined.tolist()) == set(range(num_samples))


def skew_measure(labels, shards, num_classes):
    """Mean total-variation distance of shard label mixes from the global mix."""
    histograms = partition_label_histograms(labels, shards, num_classes)
    global_mix = histograms.sum(axis=0) / histograms.sum()
    distances = []
    for row in histograms:
        mix = row / row.sum()
        distances.append(0.5 * np.abs(mix - global_mix).sum())
    return float(np.mean(distances))


class TestIIDPartition:
    def test_exact_cover(self, rng):
        shards = iid_partition(103, 7, rng)
        assert_exact_cover(shards, 103)

    def test_near_equal_sizes(self, rng):
        shards = iid_partition(100, 8, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            iid_partition(3, 5, rng)


class TestDirichletPartition:
    def test_exact_cover(self, rng):
        labels = rng.integers(0, 5, size=200)
        shards = dirichlet_partition(labels, 10, 0.5, rng)
        assert_exact_cover(shards, 200)

    def test_no_empty_shards(self, rng):
        labels = rng.integers(0, 10, size=60)
        shards = dirichlet_partition(labels, 20, 0.05, rng)
        assert all(len(s) >= 1 for s in shards)

    def test_smaller_alpha_more_skew(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 10, size=5000)
        skew_low_alpha = skew_measure(
            labels, dirichlet_partition(labels, 20, 0.1, np.random.default_rng(1)), 10
        )
        skew_high_alpha = skew_measure(
            labels, dirichlet_partition(labels, 20, 100.0, np.random.default_rng(1)), 10
        )
        assert skew_low_alpha > skew_high_alpha + 0.1

    def test_rejects_bad_alpha(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, dtype=int), 2, 0.0, rng)


class TestShardPartition:
    def test_exact_cover(self, rng):
        labels = rng.integers(0, 10, size=400)
        shards = shard_partition(labels, 10, 2, rng)
        assert_exact_cover(shards, 400)

    def test_clients_see_few_classes(self, rng):
        labels = np.repeat(np.arange(10), 100)
        shards = shard_partition(labels, 20, 2, rng)
        for shard in shards:
            classes = set(labels[shard].tolist())
            assert len(classes) <= 3  # two shards span at most 3 labels

    def test_rejects_too_many_shards(self, rng):
        with pytest.raises(ValueError):
            shard_partition(np.zeros(10, dtype=int), 10, 5, rng)


class TestQuantitySkewPartition:
    def test_exact_cover(self, rng):
        shards = quantity_skew_partition(500, 12, 1.5, rng)
        assert_exact_cover(shards, 500)

    def test_power_zero_is_balanced(self, rng):
        shards = quantity_skew_partition(100, 10, 0.0, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 2

    def test_higher_power_more_size_spread(self):
        sizes_flat = [
            len(s)
            for s in quantity_skew_partition(2000, 10, 0.0, np.random.default_rng(3))
        ]
        sizes_skewed = [
            len(s)
            for s in quantity_skew_partition(2000, 10, 2.0, np.random.default_rng(3))
        ]
        assert np.std(sizes_skewed) > np.std(sizes_flat) * 3

    def test_every_client_nonempty(self, rng):
        shards = quantity_skew_partition(50, 10, 3.0, rng)
        assert all(len(s) >= 1 for s in shards)


class TestLabelHistograms:
    def test_counts(self):
        labels = np.array([0, 0, 1, 2, 1])
        shards = [np.array([0, 2]), np.array([1, 3, 4])]
        histograms = partition_label_histograms(labels, shards, 3)
        assert histograms.tolist() == [[1, 1, 0], [1, 1, 1]]


@settings(max_examples=25, deadline=None)
@given(
    num_samples=st.integers(10, 300),
    num_clients=st.integers(1, 10),
    alpha=st.floats(0.05, 50.0),
    seed=st.integers(0, 999),
)
def test_dirichlet_exact_cover_property(num_samples, num_clients, alpha, seed):
    """Dirichlet partition covers every sample exactly once, any parameters."""
    rng = np.random.default_rng(seed)
    if num_samples < num_clients:
        return
    labels = rng.integers(0, 7, size=num_samples)
    shards = dirichlet_partition(labels, num_clients, alpha, rng)
    assert_exact_cover(shards, num_samples)
    assert all(len(s) >= 1 for s in shards)
