"""Tests for repro.fl.fedprox and repro.fl.server_optimizer."""

import numpy as np
import pytest

from repro.fl.client import ClientUpdate
from repro.fl.datasets import make_gaussian_mixture, train_test_split
from repro.fl.fedprox import FedProxClient
from repro.fl.linear import SoftmaxRegression
from repro.fl.optimizer import SGD
from repro.fl.server import FLServer
from repro.fl.server_optimizer import ServerAdam, ServerSGD


def make_prox_client(rng, mu, client_id=0):
    dataset = make_gaussian_mixture(80, 4, 3, rng=rng)
    return FedProxClient(
        client_id,
        dataset,
        SoftmaxRegression(4, 3, seed=1),
        lambda: SGD(0.3),
        proximal_mu=mu,
        local_steps=8,
        batch_size=32,
        rng=np.random.default_rng(9),
    )


class TestFedProxClient:
    def test_mu_zero_matches_fedavg(self, rng):
        from repro.fl.client import FLClient

        dataset = make_gaussian_mixture(80, 4, 3, rng=np.random.default_rng(2))
        def build(cls, **kw):
            return cls(
                0, dataset, SoftmaxRegression(4, 3, seed=1), lambda: SGD(0.3),
                local_steps=5, batch_size=32, rng=np.random.default_rng(9), **kw
            )

        plain = build(FLClient).train(np.zeros(15))
        prox = build(FedProxClient, proximal_mu=0.0).train(np.zeros(15))
        assert np.allclose(plain.delta, prox.delta)

    def test_larger_mu_smaller_drift(self, rng):
        global_params = np.zeros(15)
        drift_small = np.linalg.norm(
            make_prox_client(np.random.default_rng(3), mu=0.0).train(global_params).delta
        )
        drift_large = np.linalg.norm(
            make_prox_client(np.random.default_rng(3), mu=5.0).train(global_params).delta
        )
        assert drift_large < drift_small

    def test_rejects_negative_mu(self, rng):
        with pytest.raises(ValueError):
            make_prox_client(rng, mu=-0.1)

    def test_still_learns(self, rng):
        client = make_prox_client(rng, mu=0.1)
        params = np.zeros(15)
        for _ in range(30):
            update = client.train(params)
            params = params + update.delta
        loss, accuracy = client.evaluate(params)
        assert accuracy > 0.8


class TestServerOptimizers:
    def make_server(self, optimizer):
        rng = np.random.default_rng(0)
        dataset = make_gaussian_mixture(60, 4, 3, rng=rng)
        _, test = train_test_split(dataset, 0.3, rng)
        return FLServer(
            SoftmaxRegression(4, 3, seed=0), test, server_optimizer=optimizer
        )

    def update(self, delta):
        return ClientUpdate(client_id=0, delta=delta, num_samples=1, final_loss=0.0)

    def test_server_sgd_lr1_is_fedavg(self):
        server = self.make_server(ServerSGD(learning_rate=1.0))
        start = server.global_params()
        delta = np.full(15, 0.25)
        server.apply_updates([self.update(delta)])
        assert np.allclose(server.global_params(), start + delta)

    def test_server_momentum_accumulates(self):
        server = self.make_server(ServerSGD(learning_rate=1.0, momentum=0.9))
        delta = np.full(15, 1.0)
        start = server.global_params()
        server.apply_updates([self.update(delta)])
        first_step = server.global_params() - start
        before_second = server.global_params()
        server.apply_updates([self.update(delta)])
        second_step = server.global_params() - before_second
        assert np.linalg.norm(second_step) > np.linalg.norm(first_step)

    def test_server_adam_bounded_first_step(self):
        server = self.make_server(ServerAdam(learning_rate=0.1))
        start = server.global_params()
        server.apply_updates([self.update(np.full(15, 100.0))])
        step = server.global_params() - start
        # Adam normalises: first step magnitude ~ learning rate per coord.
        assert np.all(np.abs(step) < 0.2)

    def test_reset_clears_optimizer_state(self):
        optimizer = ServerSGD(learning_rate=1.0, momentum=0.9)
        server = self.make_server(optimizer)
        server.apply_updates([self.update(np.ones(15))])
        server.reset()
        start = server.global_params()
        server.apply_updates([self.update(np.ones(15))])
        assert np.allclose(server.global_params() - start, np.ones(15))
