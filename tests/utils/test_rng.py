"""Tests for repro.rng."""

import pytest

from repro.rng import RngTree, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")

    def test_name_sensitive(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_seed_sensitive(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_fits_in_63_bits(self):
        for name in ("x", "clients/123", ""):
            assert 0 <= derive_seed(999, name) < 2**63


class TestRngTree:
    def test_same_name_same_generator_object(self):
        tree = RngTree(1)
        assert tree.generator("a") is tree.generator("a")

    def test_streams_are_independent(self):
        tree = RngTree(1)
        a = [tree.generator("a").random() for _ in range(5)]
        b = [tree.generator("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_trees(self):
        values_1 = RngTree(42).generator("x").random(3)
        values_2 = RngTree(42).generator("x").random(3)
        assert values_1.tolist() == values_2.tolist()

    def test_fresh_generator_restarts_stream(self):
        tree = RngTree(5)
        first = tree.generator("s").random()
        restarted = tree.fresh_generator("s").random()
        assert first == restarted

    def test_adding_stream_does_not_perturb_others(self):
        tree_1 = RngTree(3)
        gen = tree_1.generator("main")
        before = gen.random(4).tolist()

        tree_2 = RngTree(3)
        tree_2.generator("extra")  # new consumer appears first
        after = tree_2.generator("main").random(4).tolist()
        assert before == after

    def test_subtree_is_deterministic(self):
        a = RngTree(9).subtree("client").generator("noise").random()
        b = RngTree(9).subtree("client").generator("noise").random()
        assert a == b

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RngTree(1.5)

    def test_repr_mentions_seed(self):
        assert "seed=11" in repr(RngTree(11))
