"""Telemetry spine: levels, histograms, spans, cross-process aggregation.

The load-bearing guarantee is the first test class: with telemetry *off*
(the default), the probes sitting on the mechanism hot paths must cost
nothing measurable — the disabled path is one module-global integer
compare.  The rest pins the span/histogram semantics every latency
surface (``BENCH_latency.json``, ``repro.cli profile``, ``watch``)
relies on: exact small-sample percentiles, exact merges through the
bucket maps, independent per-thread nesting, and trail aggregation
across forked workers.
"""

import json
import math
import multiprocessing
import threading
import timeit

import numpy as np
import pytest

from repro import telemetry
from repro.logging_utils import TELEMETRY_ENV
from repro.telemetry import Histogram, TelemetryTrail, read_trail, render_snapshot
from repro.telemetry.histogram import BUCKETS_PER_DECADE


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends at the default level with empty state."""
    telemetry.set_telemetry_level("off")
    telemetry.reset()
    yield
    telemetry.set_telemetry_level("off")
    telemetry.reset()


# -- the overhead gate --------------------------------------------------------

_WORK_ITERS = 400
_LOOP_CALLS = 200


def _workload() -> float:
    total = 0.0
    for i in range(_WORK_ITERS):
        total += math.sqrt(i + 1.5)
    return total


def _plain_loop() -> None:
    for _ in range(_LOOP_CALLS):
        _workload()


def _instrumented_loop() -> None:
    for _ in range(_LOOP_CALLS):
        with telemetry.span("bench_span"):
            _workload()


class TestOverheadGate:
    def test_disabled_span_overhead_under_two_percent(self):
        # The acceptance gate for instrumenting hot paths at all: with
        # telemetry off, a span around a ~20 microsecond workload must not
        # move the needle.  Each trial measures the two loops back to back
        # and the gate takes the cleanest pair, so scheduler preemption and
        # CPU frequency drift (several percent on shared machines — far
        # above the ~1% true cost being bounded) cannot fail a side on
        # noise that the paired other side did not see.
        telemetry.set_telemetry_level("off")
        _plain_loop(), _instrumented_loop()  # warm-up
        ratios = []
        for _ in range(15):
            plain = timeit.timeit(_plain_loop, number=1)
            instrumented = timeit.timeit(_instrumented_loop, number=1)
            ratios.append(instrumented / plain)
        best = min(ratios)
        assert best <= 1.02, (
            f"disabled-telemetry overhead {(best - 1) * 100:.2f}% exceeds 2%"
        )

    def test_disabled_probes_record_nothing(self):
        with telemetry.span("ghost"):
            pass
        telemetry.add_counter("ghost")
        telemetry.set_gauge("ghost", 1.0)
        snap = telemetry.snapshot()
        assert snap["spans"] == {} and snap["counters"] == {}
        assert snap["gauges"] == {}


# -- levels -------------------------------------------------------------------

class TestLevels:
    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "spans")
        assert telemetry.set_telemetry_level(None) == "spans"
        monkeypatch.setenv(TELEMETRY_ENV, "counters")
        assert telemetry.set_telemetry_level(None) == "counters"
        monkeypatch.delenv(TELEMETRY_ENV)
        assert telemetry.set_telemetry_level(None) == "off"

    def test_unknown_env_value_falls_back_to_off(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "verbose")
        assert telemetry.set_telemetry_level(None) == "off"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            telemetry.set_telemetry_level("everything")

    def test_counters_level_gates_spans(self):
        telemetry.set_telemetry_level("counters")
        telemetry.add_counter("hits", 2.0)
        telemetry.set_gauge("backlog", 0.5)
        with telemetry.span("decide"):
            pass
        snap = telemetry.snapshot()
        assert snap["counters"] == {"hits": 2.0}
        assert snap["gauges"] == {"backlog": 0.5}
        assert snap["spans"] == {}  # spans need the higher level
        assert telemetry.enabled()
        assert not telemetry.enabled(telemetry.TELEMETRY_SPANS)


# -- histograms ---------------------------------------------------------------

class TestHistogram:
    def test_exact_percentiles_match_numpy(self):
        rng = np.random.default_rng(7)
        data = rng.uniform(1e-4, 1e-1, size=500)
        histogram = Histogram()
        for value in data:
            histogram.record(float(value))
        for q in (50, 95, 99):
            assert histogram.percentile(q) == pytest.approx(
                float(np.percentile(data, q, method="lower"))
            )
        assert histogram.jitter == pytest.approx(float(np.std(data)), rel=1e-9)

    def test_serialised_percentiles_are_conservative_bucket_edges(self):
        rng = np.random.default_rng(11)
        data = rng.uniform(1e-4, 1e-1, size=300)
        histogram = Histogram()
        for value in data:
            histogram.record(float(value))
        revived = Histogram.from_dict(histogram.to_dict())
        assert not revived.exact
        width = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
        for q in (50, 95, 99):
            exact = histogram.percentile(q)
            coarse = revived.percentile(q)
            assert exact <= coarse <= exact * width * (1 + 1e-9)
        # Scalar aggregates survive the round trip exactly.
        assert revived.count == histogram.count
        assert revived.total == pytest.approx(histogram.total)
        assert revived.jitter == pytest.approx(histogram.jitter)

    def test_sample_cap_falls_back_to_buckets(self):
        histogram = Histogram(exact_cap=8)
        for i in range(10):
            histogram.record(1e-3 * (i + 1))
        assert not histogram.exact
        assert histogram.count == 10
        assert histogram.percentile(50) > 0.0

    def test_merge_is_exact_on_aggregates(self):
        a, b = Histogram(), Histogram()
        for i in range(50):
            a.record(1e-3 * (i + 1))
            b.record(2e-3 * (i + 1))
        total, count = a.total + b.total, a.count + b.count
        a.merge(b)
        assert a.count == count
        assert a.total == pytest.approx(total)
        assert a.max == pytest.approx(0.1)
        assert a.exact  # under the cap, the union stays sample-exact
        assert a.percentile(100) == pytest.approx(0.1)


# -- spans --------------------------------------------------------------------

class TestSpans:
    def test_nested_paths_and_self_time(self):
        telemetry.set_telemetry_level("spans")
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        spans = telemetry.snapshot()["spans"]
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer"]["count"] == 1
        # Self time excludes the child's total.
        assert spans["outer"]["self_s"] <= spans["outer"]["total_s"]

    def test_traced_decorator_defaults_to_qualname(self):
        telemetry.set_telemetry_level("spans")

        @telemetry.traced("step")
        def step(x):
            return x + 1

        assert step(1) == 2
        assert telemetry.snapshot()["spans"]["step"]["count"] == 1

    def test_reset_clears_everything_but_the_level(self):
        telemetry.set_telemetry_level("spans")
        with telemetry.span("s"):
            pass
        telemetry.add_counter("c")
        telemetry.reset()
        snap = telemetry.snapshot()
        assert snap["spans"] == {} and snap["counters"] == {}
        assert snap["level"] == "spans"

    def test_threads_nest_independently_and_aggregate(self):
        telemetry.set_telemetry_level("spans")

        def work():
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    telemetry.add_counter("laps")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = telemetry.snapshot()
        assert snap["spans"]["outer"]["count"] == 4
        assert snap["spans"]["outer/inner"]["count"] == 4
        assert "inner" not in snap["spans"]  # never a top-level path
        assert snap["counters"]["laps"] == 4.0


# -- cross-process aggregation (the campaign trail) ---------------------------

def _forked_worker(trail_path, name, rounds):
    telemetry.set_telemetry_level("spans")
    telemetry.reset()
    for _ in range(rounds):
        with telemetry.span("round_decide"):
            with telemetry.span("wd_solve"):
                _workload()
    TelemetryTrail(trail_path, worker=name).append(telemetry.snapshot())


class TestTrail:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_forked_workers_aggregate_through_the_trail(self, tmp_path):
        trail_path = tmp_path / "telemetry.jsonl"
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_forked_worker, args=(trail_path, f"w{i}", 3))
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        records = read_trail(trail_path)
        assert {record["worker"] for record in records} == {"w0", "w1"}
        merged = telemetry.merge_snapshots([r["snapshot"] for r in records])
        assert merged["spans"]["round_decide"]["count"] == 6
        assert merged["spans"]["round_decide/wd_solve"]["count"] == 6
        # Merged percentiles come from the summed bucket maps.
        assert merged["spans"]["round_decide"]["p95_ms"] > 0.0

    def test_torn_trail_lines_are_skipped(self, tmp_path):
        trail_path = tmp_path / "telemetry.jsonl"
        trail = TelemetryTrail(trail_path, worker="w")
        telemetry.set_telemetry_level("spans")
        with telemetry.span("s"):
            pass
        trail.append(telemetry.snapshot(), cell_id="cell-a")
        with open(trail_path, "a") as handle:
            handle.write('{"torn": true, "snapshot"\n')  # crashed mid-write
        trail.append(telemetry.snapshot(), cell_id="cell-b")
        with open(trail_path, "a") as handle:
            handle.write('{"torn": ')  # a trailing partial line
        records = read_trail(trail_path)
        assert [r.get("cell_id") for r in records] == ["cell-a", "cell-b"]

    def test_none_path_is_a_noop(self):
        TelemetryTrail(None).append({"spans": {}})  # must not raise
        assert read_trail("/nonexistent/telemetry.jsonl") == []

    def test_decision_latency_record(self):
        telemetry.set_telemetry_level("spans")
        with telemetry.span("round_decide"):
            pass
        record = telemetry.decision_latency(telemetry.snapshot())
        assert record["span"] == "round_decide"
        assert record["count"] == 1
        assert {"p50_ms", "p95_ms", "p99_ms", "jitter_ms", "hist"} <= record.keys()
        assert telemetry.decision_latency({"spans": {}}) is None

    def test_render_snapshot_indents_children(self):
        telemetry.set_telemetry_level("spans")
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        text = render_snapshot(telemetry.snapshot(), title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert any(line.startswith("outer") for line in lines)
        assert any(line.startswith("  inner") for line in lines)

    def test_trail_lines_are_valid_json_documents(self, tmp_path):
        trail_path = tmp_path / "telemetry.jsonl"
        telemetry.set_telemetry_level("spans")
        with telemetry.span("s"):
            pass
        TelemetryTrail(trail_path, worker="w").append(
            telemetry.snapshot(), cell_id="c", duration_seconds=1.5
        )
        (line,) = trail_path.read_text().splitlines()
        record = json.loads(line)
        assert record["worker"] == "w"
        assert record["cell_id"] == "c"
        assert record["duration_seconds"] == 1.5
        assert "s" in record["snapshot"]["spans"]
