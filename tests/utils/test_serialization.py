"""Tests for repro.utils.serialization."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import load_json, save_json, to_jsonable


@dataclass
class _Point:
    x: float
    y: np.ndarray


class TestToJsonable:
    def test_passthrough_primitives(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float32(1.5)) == 1.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_arrays(self):
        assert to_jsonable(np.array([[1, 2], [3, 4]])) == [[1, 2], [3, 4]]

    def test_dataclass(self):
        out = to_jsonable(_Point(x=1.0, y=np.array([2.0, 3.0])))
        assert out == {"x": 1.0, "y": [2.0, 3.0]}

    def test_nested_structures(self):
        value = {"a": [np.float64(1.0), {"b": (1, 2)}]}
        assert to_jsonable(value) == {"a": [1.0, {"b": [1, 2]}]}

    def test_sets_sorted(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_int_keys_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        payload = {"series": np.arange(4), "name": "run", "nested": {"ok": True}}
        path = tmp_path / "out" / "result.json"
        save_json(path, payload)
        loaded = load_json(path)
        assert loaded == {"series": [0, 1, 2, 3], "name": "run", "nested": {"ok": True}}

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.json"
        save_json(path, [1])
        assert path.exists()

    def test_output_is_sorted_and_stable(self, tmp_path):
        path_1 = tmp_path / "1.json"
        path_2 = tmp_path / "2.json"
        save_json(path_1, {"b": 1, "a": 2})
        save_json(path_2, {"a": 2, "b": 1})
        assert path_1.read_text() == path_2.read_text()
