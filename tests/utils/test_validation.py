"""Tests for repro.utils.validation."""

import math

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckFinite:
    def test_accepts_int_and_float(self):
        assert check_finite("x", 3) == 3.0
        assert check_finite("x", -2.5) == -2.5

    def test_accepts_numpy_scalars(self):
        assert check_finite("x", np.float64(1.5)) == 1.5
        assert check_finite("x", np.int32(4)) == 4.0

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="x must be finite"):
            check_finite("x", math.nan)
        with pytest.raises(ValueError, match="x must be finite"):
            check_finite("x", math.inf)

    def test_rejects_bool_and_strings(self):
        with pytest.raises(TypeError):
            check_finite("x", True)
        with pytest.raises(TypeError):
            check_finite("x", "1.0")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="learning_rate"):
            check_finite("learning_rate", math.inf)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.001) == 0.001

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.01)
        with pytest.raises(ValueError):
            check_probability("p", 1.01)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)
        assert check_in_range("x", 1.5, 1.0, 2.0, inclusive=False) == 1.5
