"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0] and "value" in lines[0]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        table = format_table(["x"], [[1.23456789]], float_fmt=".2f")
        assert "1.23" in table

    def test_bool_rendering(self):
        table = format_table(["ok"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_deterministic(self):
        rows = [["m", 1.5, 2], ["n", 0.25, 3]]
        assert format_table(["a", "b", "c"], rows) == format_table(
            ["a", "b", "c"], rows
        )


class TestFormatSeries:
    def test_columns_per_curve(self):
        text = format_series([0, 1, 2], {"acc": [0.1, 0.2, 0.3]}, x_label="round")
        assert "round" in text and "acc" in text
        assert "0.3" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="curve"):
            format_series([0, 1], {"y": [1.0]})

    def test_subsampling_keeps_endpoints(self):
        xs = list(range(100))
        ys = [float(x) for x in xs]
        text = format_series(xs, {"y": ys}, max_points=5)
        lines = text.splitlines()
        assert len(lines) <= 2 + 6  # header + rule + at most ~6 points
        assert lines[2].strip().startswith("0")
        assert "99" in lines[-1]

    def test_multiple_curves(self):
        text = format_series(
            [0, 1], {"a": [1.0, 2.0], "b": [3.0, 4.0]}, x_label="t"
        )
        header = text.splitlines()[0]
        assert "a" in header and "b" in header
