"""Tests for repro.cli."""

import json

import pytest

from repro.cli import MECHANISM_NAMES, build_mechanism, main, run_experiment
from repro.config import ExperimentConfig
from repro.core.longterm_vcg import LongTermVCGMechanism
from repro.mechanisms import ProportionalShareMechanism, RandomSelectionMechanism


class TestBuildMechanism:
    def test_default_is_lt_vcg(self):
        mechanism = build_mechanism(ExperimentConfig())
        assert isinstance(mechanism, LongTermVCGMechanism)

    def test_each_name_constructs(self):
        for name in MECHANISM_NAMES:
            config = ExperimentConfig(extras={"mechanism": name})
            assert build_mechanism(config) is not None

    def test_greedy_variant(self):
        config = ExperimentConfig(extras={"mechanism": "lt-vcg-greedy"})
        mechanism = build_mechanism(config)
        assert mechanism.config.wd_method == "greedy"

    def test_participation_target_wired(self):
        config = ExperimentConfig(participation_target=0.2, num_clients=5)
        mechanism = build_mechanism(config)
        assert mechanism.participation is not None
        assert mechanism.participation.targets == {i: 0.2 for i in range(5)}

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            build_mechanism(ExperimentConfig(extras={"mechanism": "alchemy"}))

    def test_named_baselines(self):
        assert isinstance(
            build_mechanism(ExperimentConfig(extras={"mechanism": "prop-share"})),
            ProportionalShareMechanism,
        )
        assert isinstance(
            build_mechanism(ExperimentConfig(extras={"mechanism": "random"})),
            RandomSelectionMechanism,
        )


class TestRunExperiment:
    def test_writes_artifacts(self, tmp_path):
        config = ExperimentConfig(num_clients=8, num_rounds=20, max_winners=3)
        result = run_experiment(config, tmp_path / "run")
        assert (tmp_path / "run" / "config.json").exists()
        assert (tmp_path / "run" / "event_log.json").exists()
        summary = json.loads((tmp_path / "run" / "summary.json").read_text())
        assert summary["rounds"] == 20
        assert summary["mechanism"] == "lt-vcg"
        assert result["rounds"] == 20

    def test_no_out_dir(self):
        config = ExperimentConfig(num_clients=6, num_rounds=5, max_winners=2)
        result = run_experiment(config, None)
        assert result["rounds"] == 5

    def test_deterministic(self):
        config = ExperimentConfig(num_clients=8, num_rounds=15, max_winners=3, seed=4)
        assert run_experiment(config, None) == run_experiment(config, None)


class TestMain:
    def test_list_mechanisms(self, capsys):
        assert main(["--list-mechanisms"]) == 0
        out = capsys.readouterr().out
        for name in MECHANISM_NAMES:
            assert name in out

    def test_flag_overrides(self, capsys, tmp_path):
        code = main(
            [
                "--mechanism", "random",
                "--rounds", "10",
                "--clients", "6",
                "--seed", "3",
                "--out", str(tmp_path / "r"),
            ]
        )
        assert code == 0
        assert "random" in capsys.readouterr().out
        config = json.loads((tmp_path / "r" / "config.json").read_text())
        assert config["num_rounds"] == 10
        assert config["num_clients"] == 6

    def test_config_file_input(self, tmp_path, capsys):
        config = ExperimentConfig(
            num_clients=6, num_rounds=8, max_winners=2,
            extras={"mechanism": "prop-share"},
        )
        path = tmp_path / "config.json"
        config.save(path)
        assert main(["--config", str(path)]) == 0
        assert "prop-share" in capsys.readouterr().out
