"""Tests for repro.cli."""

import json

import pytest

from repro.cli import MECHANISM_NAMES, build_mechanism, main, run_experiment
from repro.config import ExperimentConfig
from repro.core.longterm_vcg import LongTermVCGMechanism
from repro.mechanisms import ProportionalShareMechanism, RandomSelectionMechanism


class TestBuildMechanism:
    def test_default_is_lt_vcg(self):
        mechanism = build_mechanism(ExperimentConfig())
        assert isinstance(mechanism, LongTermVCGMechanism)

    def test_each_name_constructs(self):
        for name in MECHANISM_NAMES:
            config = ExperimentConfig(extras={"mechanism": name})
            assert build_mechanism(config) is not None

    def test_greedy_variant(self):
        config = ExperimentConfig(extras={"mechanism": "lt-vcg-greedy"})
        mechanism = build_mechanism(config)
        assert mechanism.config.wd_method == "greedy"

    def test_participation_target_wired(self):
        config = ExperimentConfig(participation_target=0.2, num_clients=5)
        mechanism = build_mechanism(config)
        assert mechanism.participation is not None
        assert mechanism.participation.targets == {i: 0.2 for i in range(5)}

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            build_mechanism(ExperimentConfig(extras={"mechanism": "alchemy"}))

    def test_named_baselines(self):
        assert isinstance(
            build_mechanism(ExperimentConfig(extras={"mechanism": "prop-share"})),
            ProportionalShareMechanism,
        )
        assert isinstance(
            build_mechanism(ExperimentConfig(extras={"mechanism": "random"})),
            RandomSelectionMechanism,
        )


class TestRunExperiment:
    def test_writes_artifacts(self, tmp_path):
        config = ExperimentConfig(num_clients=8, num_rounds=20, max_winners=3)
        result = run_experiment(config, tmp_path / "run")
        assert (tmp_path / "run" / "config.json").exists()
        assert (tmp_path / "run" / "event_log.json").exists()
        summary = json.loads((tmp_path / "run" / "summary.json").read_text())
        assert summary["rounds"] == 20
        assert summary["mechanism"] == "lt-vcg"
        assert result["rounds"] == 20

    def test_no_out_dir(self):
        config = ExperimentConfig(num_clients=6, num_rounds=5, max_winners=2)
        result = run_experiment(config, None)
        assert result["rounds"] == 5

    def test_deterministic(self):
        config = ExperimentConfig(num_clients=8, num_rounds=15, max_winners=3, seed=4)
        assert run_experiment(config, None) == run_experiment(config, None)


class TestMain:
    def test_list_mechanisms(self, capsys):
        assert main(["--list-mechanisms"]) == 0
        out = capsys.readouterr().out
        for name in MECHANISM_NAMES:
            assert name in out

    def test_flag_overrides(self, capsys, tmp_path):
        code = main(
            [
                "--mechanism", "random",
                "--rounds", "10",
                "--clients", "6",
                "--seed", "3",
                "--out", str(tmp_path / "r"),
            ]
        )
        assert code == 0
        assert "random" in capsys.readouterr().out
        config = json.loads((tmp_path / "r" / "config.json").read_text())
        assert config["num_rounds"] == 10
        assert config["num_clients"] == 6

    def test_config_file_input(self, tmp_path, capsys):
        config = ExperimentConfig(
            num_clients=6, num_rounds=8, max_winners=2,
            extras={"mechanism": "prop-share"},
        )
        path = tmp_path / "config.json"
        config.save(path)
        assert main(["--config", str(path)]) == 0
        assert "prop-share" in capsys.readouterr().out


class TestCampaignSubcommands:
    SWEEP_ARGS = [
        "sweep",
        "--mechanisms", "lt-vcg,random",
        "--scenarios", "mechanism,energy",
        "--seeds", "0,1",
        "--rounds", "6",
        "--clients", "6",
        "--max-winners", "2",
        "--workers", "0",
    ]

    def test_sweep_runs_grid_and_writes_store(self, tmp_path, capsys):
        out = tmp_path / "camp"
        assert main(self.SWEEP_ARGS + ["--out", str(out)]) == 0
        assert (out / "campaign.db").exists()
        assert (out / "sweep.json").exists()
        assert (out / "results.jsonl").exists()
        stdout = capsys.readouterr().out
        assert "8 cells" in stdout
        assert "8 completed" in stdout
        assert "Campaign welfare comparison" in stdout

    def test_sweep_then_resume_skips_everything(self, tmp_path, capsys):
        out = tmp_path / "camp"
        assert main(self.SWEEP_ARGS + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["resume", str(out), "--workers", "0"]) == 0
        assert "8 skipped" in capsys.readouterr().out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "camp"
        assert main(self.SWEEP_ARGS + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(out), "--by", "mechanism", "--logs"]) == 0
        stdout = capsys.readouterr().out
        assert "lt-vcg" in stdout
        assert "Mechanism comparison" in stdout

    def test_sweep_param_axis(self, tmp_path, capsys):
        out = tmp_path / "camp"
        code = main([
            "sweep", "--out", str(out),
            "--mechanisms", "lt-vcg",
            "--seeds", "0",
            "--rounds", "5", "--clients", "6", "--max-winners", "2",
            "--param", "budget_per_round=2.0,5.0",
            "--workers", "0",
        ])
        assert code == 0
        assert "2 cells" in capsys.readouterr().out

    def test_sweep_invalid_param_value_is_a_clean_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "sweep", "--out", str(tmp_path / "camp"),
                "--mechanisms", "lt-vcg", "--seeds", "0",
                "--param", "num_rounds=0", "--workers", "0",
            ])
        assert excinfo.value.code == 2  # argparse error, not a traceback
        assert "num_rounds" in capsys.readouterr().err

    def test_sweep_into_conflicting_campaign_dir_is_refused(self, tmp_path, capsys):
        out = tmp_path / "camp"
        assert main(self.SWEEP_ARGS + ["--out", str(out)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(self.SWEEP_ARGS + ["--out", str(out), "--rounds", "12"])
        assert "different campaign" in capsys.readouterr().err

    def test_sweep_failure_sets_exit_code(self, tmp_path, capsys):
        out = tmp_path / "camp"
        code = main([
            "sweep", "--out", str(out),
            "--mechanisms", "fixed-price",
            "--seeds", "0",
            "--rounds", "5", "--clients", "6", "--max-winners", "2",
            "--param", "price=-1.0",
            "--workers", "0",
        ])
        assert code == 1
        assert "1 failed" in capsys.readouterr().out


class TestBackendAndStoreFlags:
    BASE_ARGS = [
        "sweep",
        "--mechanisms", "lt-vcg,random",
        "--seeds", "0",
        "--rounds", "6",
        "--clients", "6",
        "--max-winners", "2",
    ]

    def test_thread_backend(self, tmp_path, capsys):
        out = tmp_path / "camp"
        code = main(
            self.BASE_ARGS
            + ["--out", str(out), "--backend", "thread", "--workers", "2"]
        )
        assert code == 0
        assert "2 completed" in capsys.readouterr().out

    def test_work_queue_backend_with_local_workers(self, tmp_path, capsys):
        out = tmp_path / "camp"
        code = main(
            self.BASE_ARGS
            + ["--out", str(out), "--backend", "work-queue", "--workers", "2"]
        )
        assert code == 0
        assert "2 completed" in capsys.readouterr().out
        assert (out / "queue" / "done").is_dir()

    def test_columnar_store(self, tmp_path, capsys):
        out = tmp_path / "camp"
        code = main(
            self.BASE_ARGS
            + ["--out", str(out), "--store", "columnar", "--workers", "0"]
        )
        assert code == 0
        assert (out / "results.npz").exists()
        assert not (out / "campaign.db").exists()
        capsys.readouterr()
        # resume and report sniff the columnar store from the directory.
        assert main(["resume", str(out), "--workers", "0"]) == 0
        assert "2 skipped" in capsys.readouterr().out
        assert main(["report", str(out)]) == 0
        assert "lt-vcg" in capsys.readouterr().out

    def test_retry_failed_flag(self, tmp_path, capsys):
        out = tmp_path / "camp"
        failing = [
            "sweep", "--out", str(out),
            "--mechanisms", "fixed-price", "--seeds", "0",
            "--rounds", "5", "--clients", "6", "--max-winners", "2",
            "--param", "price=-1.0", "--workers", "0",
        ]
        assert main(failing) == 1
        capsys.readouterr()
        # A plain resume skips the failed cell, says so, and stays red —
        # a pipeline gating on the exit code must not publish the grid.
        assert main(["resume", str(out), "--workers", "0"]) == 1
        stdout = capsys.readouterr().out
        assert "previously-failed cells skipped" in stdout
        # --retry-failed re-queues it (and it fails again: exit code 1).
        assert main(["resume", str(out), "--workers", "0", "--retry-failed"]) == 1
        assert "1 failed" in capsys.readouterr().out


class TestWorkAndWatch:
    def test_work_drains_an_enqueued_campaign(self, tmp_path, capsys):
        from repro.orchestration import SweepSpec, WorkQueue, load_results
        from repro.orchestration.executor import CELLS_DIR_NAME

        camp = tmp_path / "camp"
        spec = SweepSpec(
            base=ExperimentConfig(num_clients=6, num_rounds=6, max_winners=2),
            mechanisms=("lt-vcg",),
            seeds=(0, 1),
        )
        queue = WorkQueue(camp)
        queue.enqueue([
            {
                "cell": cell.to_dict(),
                "cell_dir": str(camp / CELLS_DIR_NAME / cell.cell_id),
                "events_path": str(camp / "events.jsonl"),
            }
            for cell in spec.expand()
        ])
        assert main(["work", str(camp)]) == 0
        stdout = capsys.readouterr().out
        assert "drained 2 cells" in stdout
        assert queue.counts() == {"pending": 0, "leased": 0, "done": 2}

    def test_work_on_an_empty_queue_exits_cleanly(self, tmp_path, capsys):
        assert main(["work", str(tmp_path / "camp")]) == 0
        assert "drained 0 cells" in capsys.readouterr().out

    def test_watch_once_renders_a_snapshot(self, tmp_path, capsys):
        out = tmp_path / "camp"
        assert main([
            "sweep", "--out", str(out),
            "--mechanisms", "lt-vcg", "--seeds", "0,1",
            "--rounds", "6", "--clients", "6", "--max-winners", "2",
            "--workers", "0",
        ]) == 0
        capsys.readouterr()
        assert main(["watch", str(out), "--once"]) == 0
        stdout = capsys.readouterr().out
        assert "2/2 cells" in stdout
        assert "finished=2 failed=0" in stdout
        assert "backend=inline" in stdout

    def test_watch_shows_failures(self, tmp_path, capsys):
        out = tmp_path / "camp"
        main([
            "sweep", "--out", str(out),
            "--mechanisms", "fixed-price", "--seeds", "0",
            "--rounds", "5", "--clients", "6", "--max-winners", "2",
            "--param", "price=-1.0", "--workers", "0",
        ])
        capsys.readouterr()
        assert main(["watch", str(out), "--once"]) == 0
        assert "failed=1" in capsys.readouterr().out

    def test_watch_describes_the_latest_invocation_only(self, tmp_path, capsys):
        # The trail is append-only across resumes; the dashboard must not
        # double-count cells from earlier invocations.
        out = tmp_path / "camp"
        failing = [
            "sweep", "--out", str(out),
            "--mechanisms", "fixed-price", "--seeds", "0",
            "--rounds", "5", "--clients", "6", "--max-winners", "2",
            "--param", "price=-1.0", "--workers", "0",
        ]
        main(failing)
        main(["resume", str(out), "--workers", "0", "--retry-failed"])
        capsys.readouterr()
        assert main(["watch", str(out), "--once"]) == 0
        stdout = capsys.readouterr().out
        assert "failed=1" in stdout  # not 2: one per invocation, latest wins
