"""Tests for repro.config."""

import pytest

from repro.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.num_clients == 40
        assert config.budget_per_round == 5.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_clients=0)
        with pytest.raises(ValueError):
            ExperimentConfig(max_winners=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(participation_target=1.5)
        with pytest.raises(ValueError):
            ExperimentConfig(budget_per_round=0.0)

    def test_with_overrides(self):
        base = ExperimentConfig(name="base", v=10.0)
        derived = base.with_overrides(v=100.0)
        assert derived.v == 100.0
        assert derived.name == "base"
        assert base.v == 10.0  # original untouched

    def test_json_round_trip(self, tmp_path):
        config = ExperimentConfig(
            name="e3", seed=11, dirichlet_alpha=None, extras={"note": "tight budget"}
        )
        path = tmp_path / "config.json"
        config.save(path)
        loaded = ExperimentConfig.load(path)
        assert loaded == config

    def test_to_dict_is_plain(self):
        data = ExperimentConfig().to_dict()
        assert isinstance(data, dict)
        assert data["model"] == "softmax"
