"""Tests for repro.orchestration.executor (run, parallel, kill → resume)."""

import pytest

from repro.config import ExperimentConfig
from repro.orchestration import (
    ResultStore,
    SweepSpec,
    load_results,
    resume_campaign,
    run_campaign,
)
from repro.simulation.replay import load_event_log

TIMING_KEYS = ("sim_seconds", "rounds_per_second")


def small_spec(**overrides):
    defaults = dict(
        base=ExperimentConfig(
            num_clients=6, num_rounds=8, max_winners=2, budget_per_round=2.0, v=10.0
        ),
        mechanisms=("lt-vcg", "random"),
        scenarios=("mechanism",),
        seeds=(0, 1),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def stable_metrics(results):
    """(cell_id -> metrics) with wall-clock keys dropped."""
    return {
        r.cell_id: {k: v for k, v in r.metrics.items() if k not in TIMING_KEYS}
        for r in results
        if r.completed
    }


class TestInlineCampaign:
    def test_runs_all_cells(self, tmp_path):
        summary = run_campaign(small_spec(), tmp_path / "camp", max_workers=0)
        assert summary.total_cells == 4
        assert summary.completed == 4
        assert summary.failed == 0
        results = load_results(tmp_path / "camp")
        assert all(r.completed for r in results)
        for result in results:
            assert result.metrics["rounds"] == 8
            assert "total_welfare" in result.metrics

    def test_archives_event_logs(self, tmp_path):
        run_campaign(small_spec(), tmp_path / "camp", max_workers=0)
        for result in load_results(tmp_path / "camp"):
            log = load_event_log(result.event_log_path)
            assert len(log) == 8

    def test_deterministic_across_campaign_dirs(self, tmp_path):
        run_campaign(small_spec(), tmp_path / "a", max_workers=0)
        run_campaign(small_spec(), tmp_path / "b", max_workers=0)
        assert stable_metrics(load_results(tmp_path / "a")) == stable_metrics(
            load_results(tmp_path / "b")
        )

    def test_regret_cells(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,), compute_regret=True)
        run_campaign(spec, tmp_path / "camp", max_workers=0)
        (result,) = load_results(tmp_path / "camp")
        assert "regret" in result.metrics
        assert result.metrics["regret"] >= -1e-9


class TestFailureCapture:
    def test_crashed_cell_records_traceback_and_campaign_continues(self, tmp_path):
        # fixed-price validates price > 0, so the -1.0 axis value crashes
        # inside the worker while the 0.5 cells keep running.
        spec = small_spec(
            mechanisms=("fixed-price",), params={"price": (0.5, -1.0)}
        )
        summary = run_campaign(spec, tmp_path / "camp", max_workers=0)
        assert summary.total_cells == 4
        assert summary.failed == 2
        assert summary.completed == 2
        failed = [r for r in load_results(tmp_path / "camp") if r.status == "failed"]
        assert len(failed) == 2
        for result in failed:
            assert "price" in result.error  # the captured traceback

    def test_failed_cells_skip_by_default_and_requeue_with_retry_failed(
        self, tmp_path
    ):
        # A deterministic cell that crashed once will crash again, so a
        # plain resume skips it (visibly: the summary reports how many)
        # and only --retry-failed re-queues it.
        spec = small_spec(
            mechanisms=("fixed-price",), seeds=(0,), params={"price": (-1.0,)}
        )
        run_campaign(spec, tmp_path / "camp", max_workers=0)

        summary = run_campaign(spec, tmp_path / "camp", max_workers=0)
        assert summary.skipped == 1
        assert summary.skipped_failed == 1
        assert summary.executed == 0
        (result,) = load_results(tmp_path / "camp")
        assert result.attempts == 1

        retried = run_campaign(
            spec, tmp_path / "camp", max_workers=0, retry_failed=True
        )
        assert retried.skipped == 0
        assert retried.skipped_failed == 0
        assert retried.executed == 1
        assert retried.failed == 1
        (result,) = load_results(tmp_path / "camp")
        assert result.attempts == 2

    def test_resume_campaign_retry_failed_flag(self, tmp_path):
        spec = small_spec(
            mechanisms=("fixed-price",), seeds=(0,), params={"price": (-1.0,)}
        )
        run_campaign(spec, tmp_path / "camp", max_workers=0)
        plain = resume_campaign(tmp_path / "camp", max_workers=0)
        assert plain.executed == 0 and plain.skipped_failed == 1
        retried = resume_campaign(
            tmp_path / "camp", max_workers=0, retry_failed=True
        )
        assert retried.executed == 1
        (result,) = load_results(tmp_path / "camp")
        assert result.attempts == 2


class TestKillAndResume:
    def test_interrupt_then_resume_skips_completed_cells(self, tmp_path):
        spec = small_spec()  # 4 cells
        camp = tmp_path / "camp"

        def kill_after_two(outcome, done, total):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, camp, max_workers=0, progress=kill_after_two)

        # The two finished cells were checkpointed before the "kill".
        with ResultStore(camp) as store:
            assert len(store.completed_ids()) == 2

        # Resume from the directory alone; only the remaining cells run.
        summary = resume_campaign(camp, max_workers=0)
        assert summary.skipped == 2
        assert summary.executed == 2
        assert summary.failed == 0

        # Completed cells were not re-run (attempts stayed at 1) and the
        # aggregate metrics match an uninterrupted campaign exactly.
        results = load_results(camp)
        assert all(r.attempts == 1 for r in results)
        run_campaign(spec, tmp_path / "fresh", max_workers=0)
        assert stable_metrics(results) == stable_metrics(
            load_results(tmp_path / "fresh")
        )


class TestSpecConflict:
    def test_resuming_a_different_spec_is_refused(self, tmp_path):
        camp = tmp_path / "camp"
        run_campaign(small_spec(), camp, max_workers=0)
        changed = small_spec(
            base=ExperimentConfig(
                num_clients=6, num_rounds=20, max_winners=2,
                budget_per_round=2.0, v=10.0,
            )
        )
        # Same cell ids, different base config: resuming would silently
        # present the 8-round results as 20-round numbers.
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(changed, camp, max_workers=0)
        # resume=False (--fresh) re-runs everything under the new spec.
        summary = run_campaign(changed, camp, max_workers=0, resume=False)
        assert summary.executed == summary.total_cells
        for result in load_results(camp):
            assert result.metrics["rounds"] == 20

    def test_identical_spec_resumes_fine(self, tmp_path):
        camp = tmp_path / "camp"
        run_campaign(small_spec(), camp, max_workers=0)
        summary = run_campaign(small_spec(), camp, max_workers=0)
        assert summary.skipped == summary.total_cells


class TestParallelCampaign:
    def test_process_pool_matches_inline(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "pool", max_workers=2)
        run_campaign(spec, tmp_path / "inline", max_workers=0)
        pool_results = load_results(tmp_path / "pool")
        assert all(r.completed for r in pool_results)
        assert stable_metrics(pool_results) == stable_metrics(
            load_results(tmp_path / "inline")
        )


class TestBatchedWorker:
    def test_batched_cells_match_forced_sequential(self, tmp_path):
        # Stateless mechanisms on the history-free mechanism scenario run
        # batched by default; round_batch=0 forces the sequential loop.
        # Metrics must agree exactly.
        spec = small_spec(mechanisms=("prop-share", "greedy-first-price"))
        sequential_spec = SweepSpec(
            base=spec.base.with_overrides(
                extras={**spec.base.extras, "round_batch": 0}
            ),
            mechanisms=spec.mechanisms,
            scenarios=spec.scenarios,
            seeds=spec.seeds,
        )
        run_campaign(spec, tmp_path / "batched", max_workers=0)
        run_campaign(sequential_spec, tmp_path / "sequential", max_workers=0)
        assert stable_metrics(load_results(tmp_path / "batched")) == stable_metrics(
            load_results(tmp_path / "sequential")
        )
