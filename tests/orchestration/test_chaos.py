"""Chaos suite: deterministic fault injection against the campaign fabric.

Three layers:

* unit tests of :mod:`repro.faults` (plan parsing, seeded determinism,
  trigger caps, each fault mode);
* retry/quarantine semantics on the inline backend — transient failures
  succeed on a later attempt, poison cells dead-letter;
* randomized fault schedules against the work-queue backend (worker
  crashes, stalls past the lease, torn acks) plus coordinator-side
  crashes in subprocesses, all asserting the recovered campaign's store
  is bit-identical to a fault-free run.

``CHAOS_SEEDS`` (comma-separated ints, default ``0``) widens the
schedule matrix — CI's chaos-smoke job sweeps several seeds.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro import faults
from repro.config import ExperimentConfig
from repro.faults import (
    CRASH_EXIT_CODE,
    FaultInjector,
    FaultSpec,
    TransientFaultError,
    parse_fault_plan,
)
from repro.orchestration import (
    EVENTS_NAME,
    RetryPolicy,
    SweepSpec,
    load_quarantine_record,
    load_results,
    quarantine_cell,
    quarantined_ids,
    read_events,
    resume_campaign,
    run_campaign,
)
from repro.orchestration.backends import WorkQueueBackend

TIMING_KEYS = ("sim_seconds", "rounds_per_second")


def small_spec(**overrides):
    defaults = dict(
        base=ExperimentConfig(
            num_clients=6, num_rounds=8, max_winners=2, budget_per_round=2.0, v=10.0
        ),
        mechanisms=("lt-vcg", "prop-share"),
        scenarios=("mechanism",),
        seeds=(0, 1),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def stable_metrics(results):
    return {
        r.cell_id: {k: v for k, v in r.metrics.items() if k not in TIMING_KEYS}
        for r in results
        if r.completed
    }


@pytest.fixture(autouse=True)
def _pristine_faults(monkeypatch):
    """No plan armed going in; module globals fully reset going out."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_SEED_ENV, raising=False)
    monkeypatch.delenv(faults.STALL_SECONDS_ENV, raising=False)
    faults.configure("")
    yield
    faults._INJECTOR = None
    faults._RESOLVED = False


class TestPlanParsing:
    def test_full_syntax(self):
        specs = parse_fault_plan(
            "queue.claim:crash@0.1, store.flush:torn_write@0.05#3 ,"
            "worker.run_cell:io_error"
        )
        assert specs == (
            FaultSpec("queue.claim", "crash", 0.1),
            FaultSpec("store.flush", "torn_write", 0.05, 3),
            FaultSpec("worker.run_cell", "io_error", 1.0),
        )

    def test_empty_plan_disables(self):
        assert parse_fault_plan("") == ()
        assert parse_fault_plan(" , ") == ()
        assert faults.configure("") is None
        assert not faults.enabled()

    @pytest.mark.parametrize(
        "bad, match",
        [
            ("queue.claim", "expected site:mode"),
            ("nowhere:crash", "unknown fault site"),
            ("queue.claim:melt", "unknown fault mode"),
            ("queue.claim:crash@0", "probability"),
            ("queue.claim:crash@1.5", "probability"),
            ("queue.claim:crash#0", "max_triggers"),
        ],
    )
    def test_rejects_bad_entries(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_fault_plan(bad)


class TestInjector:
    def test_io_error_respects_trigger_cap(self):
        injector = FaultInjector(
            parse_fault_plan("worker.run_cell:io_error#2"), seed=1
        )
        raised = 0
        for _ in range(5):
            try:
                injector.fire("worker.run_cell")
            except TransientFaultError:
                raised += 1
        assert raised == 2
        assert injector.triggered[("worker.run_cell", "io_error")] == 2

    def test_unarmed_site_never_fires(self):
        injector = FaultInjector(parse_fault_plan("queue.ack:io_error"), seed=1)
        for _ in range(10):
            injector.fire("queue.claim")  # must not raise
        assert injector.triggered == {}

    def test_same_seed_same_schedule(self):
        def schedule(seed):
            injector = FaultInjector(
                parse_fault_plan("queue.claim:io_error@0.4"), seed=seed
            )
            fired = []
            for _ in range(40):
                try:
                    injector.fire("queue.claim")
                    fired.append(False)
                except TransientFaultError:
                    fired.append(True)
            return fired

        assert schedule(7) == schedule(7)
        assert any(schedule(7)) and not all(schedule(7))

    def test_stall_sleeps(self):
        injector = FaultInjector(
            parse_fault_plan("queue.ack:stall#1"), seed=0, stall_seconds=0.05
        )
        started = time.perf_counter()
        injector.fire("queue.ack")
        assert time.perf_counter() - started >= 0.05
        injector.fire("queue.ack")  # capped: no second stall

    def test_configure_from_env_is_lazy(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.run_cell:io_error#1")
        faults._INJECTOR = None
        faults._RESOLVED = False
        with pytest.raises(TransientFaultError):
            faults.fault_point("worker.run_cell")
        faults.fault_point("worker.run_cell")  # cap reached

    def test_crash_exits_with_marker_code(self, tmp_path):
        result = _run_py(
            "from repro import faults\n"
            "faults.configure('queue.claim:crash')\n"
            "faults.fault_point('queue.claim')\n"
        )
        assert result.returncode == CRASH_EXIT_CODE

    def test_torn_write_truncates_then_crashes(self, tmp_path):
        victim = tmp_path / "victim.bin"
        victim.write_bytes(b"x" * 100)
        result = _run_py(
            "import sys\n"
            "from repro import faults\n"
            "faults.configure('store.flush:torn_write', seed=3)\n"
            "faults.torn_write_point('store.flush', sys.argv[1])\n",
            args=[str(victim)],
        )
        assert result.returncode == CRASH_EXIT_CODE
        assert 0 < victim.stat().st_size < 100


class TestRetryAndQuarantine:
    def test_transient_failure_succeeds_on_retry(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        faults.configure("worker.run_cell:io_error#2")
        summary = run_campaign(spec, tmp_path / "camp", backend="inline")
        assert summary.executed == 1 and summary.failed == 0
        assert summary.retried == 2
        assert summary.quarantined == 0
        (result,) = load_results(tmp_path / "camp")
        assert result.completed
        assert result.attempts == 3
        events = read_events(tmp_path / "camp" / EVENTS_NAME)
        retries = [e for e in events if e.type == "cell_retry"]
        assert [e.data["attempt"] for e in retries] == [1, 2]
        assert all(
            e.data["exception_type"] == "TransientFaultError" for e in retries
        )
        # The fault-injected result matches a clean run bit for bit.
        faults.configure("")
        run_campaign(spec, tmp_path / "clean", backend="inline")
        assert stable_metrics(load_results(tmp_path / "camp")) == stable_metrics(
            load_results(tmp_path / "clean")
        )

    def test_persistent_transient_failure_quarantines(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        faults.configure("worker.run_cell:io_error")  # fails every attempt
        summary = run_campaign(spec, tmp_path / "camp", backend="inline")
        assert summary.executed == 1 and summary.failed == 1
        assert summary.retried == 2  # max_attempts=3 total
        assert summary.quarantined == 1
        (result,) = load_results(tmp_path / "camp")
        assert result.status == "failed"
        assert result.attempts == 3
        assert result.exception_type == "TransientFaultError"
        (cell_id,) = quarantined_ids(tmp_path / "camp")
        record = load_quarantine_record(tmp_path / "camp", cell_id)
        assert record["classification"] == "transient-exhausted"
        assert record["attempts"] == 3
        assert record["exception_type"] == "TransientFaultError"
        assert "TransientFaultError" in record["error"]
        events = read_events(tmp_path / "camp" / EVENTS_NAME)
        (quarantined,) = [e for e in events if e.type == "cell_quarantined"]
        assert quarantined.cell_id == cell_id

    def test_deterministic_failure_quarantines_without_retry(self, tmp_path):
        spec = small_spec(
            mechanisms=("fixed-price",), seeds=(0,), params={"price": (-1.0,)}
        )
        summary = run_campaign(spec, tmp_path / "camp", backend="inline")
        assert summary.failed == 1
        assert summary.retried == 0  # ValueError: retrying would be futile
        assert summary.quarantined == 1
        (result,) = load_results(tmp_path / "camp")
        assert result.attempts == 1
        assert result.exception_type == "ValueError"
        (cell_id,) = quarantined_ids(tmp_path / "camp")
        record = load_quarantine_record(tmp_path / "camp", cell_id)
        assert record["classification"] == "deterministic"

    def test_quarantine_cleared_when_cell_later_succeeds(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        (cell,) = spec.expand()
        quarantine_cell(tmp_path / "camp", cell.cell_id)
        summary = run_campaign(spec, tmp_path / "camp", backend="inline")
        assert summary.failed == 0
        assert summary.quarantined == 0
        assert quarantined_ids(tmp_path / "camp") == set()

    def test_retry_policy_disabled_records_first_failure(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        faults.configure("worker.run_cell:io_error#1")
        summary = run_campaign(
            spec, tmp_path / "camp", backend="inline",
            retry=RetryPolicy(max_attempts=1),
        )
        assert summary.failed == 1 and summary.retried == 0
        (result,) = load_results(tmp_path / "camp")
        assert result.attempts == 1

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy()
        first = policy.backoff_seconds("cell-a", 1)
        assert first == policy.backoff_seconds("cell-a", 1)
        assert first != policy.backoff_seconds("cell-b", 1)
        for attempt in range(1, 12):
            delay = policy.backoff_seconds("cell-a", attempt)
            assert 0 < delay <= policy.backoff_max_seconds * (
                1 + policy.jitter_fraction
            )


def _chaos_seeds():
    return [int(s) for s in os.environ.get("CHAOS_SEEDS", "0").split(",")]


#: Worker-side-only fault schedules: these sites are probed exclusively in
#: drainer processes, so the pytest process (the coordinator) survives and
#: the fabric's recovery machinery — lease reclaim, ack fencing, dead-
#: worker release, respawn — has to absorb every injected death.
WORKER_SCHEDULES = {
    "crash": dict(
        plan="queue.claim:crash@0.4#2,worker.run_cell:crash@0.25#2",
        lease_seconds=0.4,
        stall_seconds=0.75,
    ),
    "stall": dict(
        plan="queue.ack:stall#2",
        lease_seconds=0.3,
        stall_seconds=1.0,
    ),
    "torn-write": dict(
        plan="queue.ack:torn_write@0.5#1,queue.claim:crash@0.25#1",
        lease_seconds=0.4,
        stall_seconds=0.75,
    ),
}


@pytest.fixture(scope="module")
def reference_metrics(tmp_path_factory):
    """Fault-free metrics of the chaos spec, shared across schedules."""
    camp = tmp_path_factory.mktemp("reference") / "camp"
    run_campaign(small_spec(), camp, backend="inline")
    return stable_metrics(load_results(camp))


class TestChaosCampaigns:
    @pytest.mark.parametrize("seed", _chaos_seeds())
    @pytest.mark.parametrize("schedule", sorted(WORKER_SCHEDULES))
    def test_fault_schedule_preserves_results(
        self, tmp_path, reference_metrics, schedule, seed
    ):
        config = WORKER_SCHEDULES[schedule]
        spec = small_spec()
        camp = tmp_path / "camp"
        backend = WorkQueueBackend(
            camp, num_workers=2, lease_seconds=config["lease_seconds"]
        )
        faults.configure(
            config["plan"], seed=seed, stall_seconds=config["stall_seconds"]
        )
        try:
            summary = run_campaign(spec, camp, backend=backend)
        finally:
            faults.configure("")
        assert summary.failed == 0
        assert summary.executed == 4
        assert summary.quarantined == 0
        # Exactly-once store contents, bit-identical to the clean run.
        assert stable_metrics(load_results(camp)) == reference_metrics

    def test_stalled_worker_loses_lease_and_result_is_discarded(self, tmp_path):
        # Deterministic variant of the stall schedule: the first ack stalls
        # 1 s against a 0.2 s lease, so the fencing path *must* trigger.
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        camp = tmp_path / "camp"
        backend = WorkQueueBackend(camp, num_workers=1, lease_seconds=0.2)
        faults.configure("queue.ack:stall#1", stall_seconds=1.0)
        try:
            summary = run_campaign(spec, camp, backend=backend)
        finally:
            faults.configure("")
        assert summary.failed == 0 and summary.executed == 1
        events = read_events(camp / EVENTS_NAME)
        assert any(e.type == "cell_lease_lost" for e in events)
        # The cell still landed exactly once in the store.
        (result,) = load_results(camp)
        assert result.completed


def _run_py(code, *, args=(), env=None):
    """Run a snippet with ``repro`` importable, as a fresh process."""
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    merged = dict(os.environ)
    merged["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + [p for p in merged.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, "-c", code, *args],
        env=merged,
        capture_output=True,
        text=True,
        timeout=120,
    )


_COORDINATOR_SNIPPET = """
import sys
from repro.config import ExperimentConfig
from repro.orchestration import SweepSpec, run_campaign
spec = SweepSpec(
    base=ExperimentConfig(
        num_clients=6, num_rounds=8, max_winners=2, budget_per_round=2.0, v=10.0
    ),
    mechanisms=("lt-vcg", "prop-share"),
    scenarios=("mechanism",),
    seeds=(0, 1),
)
run_campaign(spec, sys.argv[1], backend="inline", store=sys.argv[2])
"""


class TestCoordinatorCrashRecovery:
    """Coordinator-side faults need their own process: crashes are real."""

    @pytest.mark.parametrize(
        "store, plan, backend, resume_backend, resume_workers",
        [
            ("columnar", "store.flush:torn_write#1", "inline", "inline", 0),
            ("sqlite", "executor.record:crash#1", "inline", "inline", 0),
            # The torn enqueue leaves unreadable JSON in queue/tasks/;
            # resuming through the work-queue backend exercises the
            # startup repair() pass that parks it and re-enqueues cleanly.
            ("sqlite", "queue.enqueue:torn_write#1", "work-queue", "work-queue", 1),
        ],
    )
    def test_killed_coordinator_resumes_to_identical_results(
        self, tmp_path, reference_metrics, store, plan,
        backend, resume_backend, resume_workers,
    ):
        camp = tmp_path / "camp"
        snippet = _COORDINATOR_SNIPPET.replace(
            'backend="inline"', f'backend="{backend}"'
        )
        first = _run_py(
            snippet,
            args=[str(camp), store],
            env={faults.FAULTS_ENV: plan, faults.FAULTS_SEED_ENV: "5"},
        )
        assert first.returncode == CRASH_EXIT_CODE, first.stderr
        # The crash left a campaign directory behind; resuming without any
        # fault plan must converge to the clean run's exact results.
        summary = resume_campaign(
            camp, backend=resume_backend, max_workers=resume_workers
        )
        assert summary.failed == 0
        assert stable_metrics(load_results(camp)) == reference_metrics

    def test_torn_columnar_snapshot_is_parked_and_recovered(self, tmp_path):
        camp = tmp_path / "camp"
        first = _run_py(
            _COORDINATOR_SNIPPET,
            args=[str(camp), "columnar"],
            env={faults.FAULTS_ENV: "store.flush:torn_write#1"},
        )
        assert first.returncode == CRASH_EXIT_CODE, first.stderr
        assert (camp / "results.npz").exists()  # torn snapshot on disk
        summary = resume_campaign(camp, backend="inline", max_workers=0)
        assert summary.failed == 0
        # The unreadable snapshot was parked for post-mortems, not deleted.
        assert (camp / "results.npz.corrupt").exists()
        assert len(stable_metrics(load_results(camp))) == 4


class TestQueueRepair:
    def _queue(self, tmp_path):
        from repro.orchestration.queue import WorkQueue

        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        queue = WorkQueue(tmp_path / "camp", lease_seconds=30.0)
        (cell,) = spec.expand()
        payload = {"cell": cell.to_dict(), "cell_dir": None, "events_path": None}
        assert queue.enqueue([payload]) == 1
        return queue, cell.cell_id

    def test_orphaned_claim_sidecar_is_dropped(self, tmp_path):
        queue, cell_id = self._queue(tmp_path)
        (queue.leases_dir / f"{cell_id}.claim.json").write_text(
            json.dumps({"worker": "ghost", "claimed_at": 0.0})
        )
        repaired = queue.repair()
        assert repaired["orphaned_claims"] == 1
        assert not (queue.leases_dir / f"{cell_id}.claim.json").exists()

    def test_torn_task_payload_is_parked(self, tmp_path):
        queue, cell_id = self._queue(tmp_path)
        (queue.tasks_dir / f"{cell_id}.json").write_text('{"cell": {"cell')
        repaired = queue.repair()
        assert repaired["corrupt"] == 1
        assert not (queue.tasks_dir / f"{cell_id}.json").exists()
        assert list((queue.queue_dir / "corrupt").iterdir())

    def test_torn_outcome_with_live_lease_is_left_for_reack(self, tmp_path):
        queue, cell_id = self._queue(tmp_path)
        assert queue.claim("w") is not None
        (queue.done_dir / f"{cell_id}.json").write_text('{"status": "comp')
        repaired = queue.repair()
        assert repaired["corrupt"] == 0
        assert (queue.done_dir / f"{cell_id}.json").exists()

    def test_torn_outcome_without_lease_is_parked(self, tmp_path):
        queue, cell_id = self._queue(tmp_path)
        (queue.done_dir / f"{cell_id}.json").write_text('{"status": "comp')
        repaired = queue.repair()
        assert repaired["corrupt"] == 1
        assert not (queue.done_dir / f"{cell_id}.json").exists()

    def test_torn_claim_scan_survives_poison_payload(self, tmp_path):
        # A torn *pending* payload must not kill the drainer that claims
        # it: it is parked mid-claim and the next task is handed out.
        queue, cell_id = self._queue(tmp_path)
        (queue.tasks_dir / "aaa-torn.json").write_text('{"cell": {"cell')
        claimed = queue.claim("w")
        assert claimed is not None
        assert claimed["cell"]["cell_id"] == cell_id
        assert list((queue.queue_dir / "corrupt").iterdir())
