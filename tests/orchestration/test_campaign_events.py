"""Tests for the campaign event bus and the successive-halving scheduler."""

import json
import threading

import pytest

from repro.config import ExperimentConfig
from repro.orchestration import (
    EVENTS_NAME,
    CampaignEvent,
    EventWriter,
    SuccessiveHalvingScheduler,
    SweepSpec,
    follow_events,
    read_events,
    run_campaign,
    run_successive_halving,
)
from repro.orchestration.events import metric_snapshot
from repro.orchestration.scheduler import ArmScore


def small_spec(**overrides):
    defaults = dict(
        base=ExperimentConfig(
            num_clients=6, num_rounds=8, max_winners=2, budget_per_round=2.0, v=10.0
        ),
        mechanisms=("lt-vcg", "random"),
        scenarios=("mechanism",),
        seeds=(0, 1),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestEventTrail:
    def test_writer_reader_round_trip(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        writer = EventWriter(path, worker="tester")
        writer.emit("cell_started", cell_id="a")
        writer.emit("cell_finished", cell_id="a", duration_seconds=0.5,
                    metrics={"total_welfare": 1.25})
        events = read_events(path)
        assert [e.type for e in events] == ["cell_started", "cell_finished"]
        assert events[0].cell_id == "a"
        assert events[0].worker == "tester"
        assert events[1].data["metrics"]["total_welfare"] == 1.25
        assert events[0].timestamp <= events[1].timestamp

    def test_disabled_writer_is_a_noop(self, tmp_path):
        writer = EventWriter(None)
        writer.emit("cell_started", cell_id="a")  # must not raise
        assert read_events(tmp_path / EVENTS_NAME) == []

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        EventWriter(path).emit("cell_started", cell_id="a")
        with open(path, "a") as handle:
            handle.write('{"type": "cell_fin')  # a torn append
        (event,) = read_events(path)
        assert event.type == "cell_started"

    def test_metric_snapshot_drops_series(self):
        metrics = {
            "total_welfare": 4.2,
            "rounds": 8,
            "budget_compliant": True,
            "mechanism": "lt-vcg",
            "per_round_regret": [0.1, 0.2],
        }
        snapshot = metric_snapshot(metrics)
        assert "per_round_regret" not in snapshot
        assert snapshot["total_welfare"] == 4.2
        assert snapshot["rounds"] == 8
        assert snapshot["budget_compliant"] is True

    def test_event_dict_round_trip(self):
        event = CampaignEvent(
            type="cell_finished", timestamp=12.5, cell_id="x",
            worker="w", data={"duration_seconds": 1.0},
        )
        assert CampaignEvent.from_dict(
            json.loads(json.dumps(event.to_dict()))
        ) == event

    def test_emit_swallows_os_errors(self, tmp_path):
        # The trail is observability, not correctness: an unwritable path
        # (here: the parent "directory" is a regular file) drops events
        # with a warning instead of failing the cell being narrated.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        writer = EventWriter(blocker / EVENTS_NAME)
        writer.emit("cell_started", cell_id="a")  # must not raise
        writer.emit("cell_finished", cell_id="a")  # warning is one-time

    def test_follow_events_buffers_partial_trailing_line(self, tmp_path):
        # A reader polling mid-append must not parse (and then skip) the
        # half-written line: bytes after the last newline stay buffered
        # until the writer finishes, then the completed event is yielded.
        path = tmp_path / EVENTS_NAME
        stop = threading.Event()
        seen = []

        def tail():
            for event in follow_events(path, poll_interval=0.01, stop=stop):
                seen.append(event)

        thread = threading.Thread(target=tail)
        thread.start()
        try:
            EventWriter(path, worker="w").emit("campaign_started")
            self._wait_for(lambda: len(seen) == 1)
            line = json.dumps(
                {"type": "cell_started", "timestamp": 1.0, "cell_id": "a"}
            )
            with open(path, "a") as handle:
                handle.write(line[:10])
                handle.flush()
            threading.Event().wait(0.1)
            assert len(seen) == 1  # nothing torn was yielded
            with open(path, "a") as handle:
                handle.write(line[10:] + "\n")
            self._wait_for(lambda: len(seen) == 2)
            assert seen[1].type == "cell_started"
            assert seen[1].cell_id == "a"
        finally:
            stop.set()
            thread.join(timeout=5)

    def test_follow_events_resets_on_truncation(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        stop = threading.Event()
        seen = []

        def tail():
            for event in follow_events(path, poll_interval=0.01, stop=stop):
                seen.append(event.type)

        thread = threading.Thread(target=tail)
        thread.start()
        try:
            EventWriter(path).emit("campaign_started")
            EventWriter(path).emit("cell_started", cell_id="a")
            self._wait_for(lambda: len(seen) == 2)
            # The trail is rotated underneath the tailer (shorter file):
            # the follower must restart from the new top, not wedge.
            path.write_text(
                json.dumps({"type": "campaign_finished", "timestamp": 2.0})
                + "\n"
            )
            self._wait_for(lambda: len(seen) == 3)
            assert seen[2] == "campaign_finished"
        finally:
            stop.set()
            thread.join(timeout=5)

    @staticmethod
    def _wait_for(predicate, timeout=5.0):
        deadline = threading.Event()
        for _ in range(int(timeout / 0.01)):
            if predicate():
                return
            deadline.wait(0.01)
        assert predicate()

    def test_follow_events_tails_appends(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        stop = threading.Event()
        seen = []

        def tail():
            for event in follow_events(path, poll_interval=0.01, stop=stop):
                seen.append(event.type)

        thread = threading.Thread(target=tail)
        thread.start()
        writer = EventWriter(path)
        writer.emit("campaign_started")
        writer.emit("cell_started", cell_id="a")
        for _ in range(200):
            if len(seen) == 2:
                break
            threading.Event().wait(0.01)
        stop.set()
        thread.join(timeout=5)
        assert seen == ["campaign_started", "cell_started"]


class TestCampaignEmitsEvents:
    def test_full_trail_shape(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "camp", max_workers=0)
        events = read_events(tmp_path / "camp" / EVENTS_NAME)
        types = [event.type for event in events]
        assert types[0] == "campaign_started"
        assert types[-1] == "campaign_finished"
        assert types.count("cell_started") == 4
        assert types.count("cell_finished") == 4
        started = events[0]
        assert started.data["total_cells"] == 4
        assert started.data["backend"] == "inline"
        assert started.data["store"] == "sqlite"
        for event in events:
            if event.type == "cell_finished":
                assert event.data["metrics"]["rounds"] == 8
                assert "total_welfare" in event.data["metrics"]

    def test_failures_emit_cell_failed(self, tmp_path):
        spec = small_spec(
            mechanisms=("fixed-price",), seeds=(0,), params={"price": (-1.0,)}
        )
        run_campaign(spec, tmp_path / "camp", max_workers=0)
        events = read_events(tmp_path / "camp" / EVENTS_NAME)
        (failed,) = [e for e in events if e.type == "cell_failed"]
        assert "price" in failed.data["error"]

    def test_events_false_disables_the_trail(self, tmp_path):
        run_campaign(small_spec(), tmp_path / "camp", max_workers=0, events=False)
        assert not (tmp_path / "camp" / EVENTS_NAME).exists()


class TestScheduler:
    def make_arm(self, mechanism, score, cells=2):
        return ArmScore(mechanism, "mechanism", {}, score, cells)

    def test_rank_and_survivors_max_mode(self):
        scheduler = SuccessiveHalvingScheduler(eta=2)
        ranked = scheduler.rank(
            [self.make_arm("a", 1.0), self.make_arm("b", 3.0),
             self.make_arm("c", 2.0), self.make_arm("d", float("nan"))]
        )
        assert [arm.mechanism for arm in ranked] == ["b", "c", "a", "d"]
        survivors = scheduler.survivors(ranked)
        assert [arm.mechanism for arm in survivors] == ["b", "c"]

    def test_min_mode(self):
        scheduler = SuccessiveHalvingScheduler(mode="min", eta=2)
        ranked = scheduler.rank([self.make_arm("a", 1.0), self.make_arm("b", 3.0)])
        assert ranked[0].mechanism == "a"

    def test_at_least_one_arm_survives(self):
        scheduler = SuccessiveHalvingScheduler(eta=4)
        assert len(scheduler.survivors([self.make_arm("a", 1.0)])) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            SuccessiveHalvingScheduler(mode="median")
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalvingScheduler(eta=1)

    def test_score_arm_reads_cell_finished_events(self, tmp_path):
        run_campaign(
            small_spec(mechanisms=("lt-vcg",)), tmp_path / "camp", max_workers=0
        )
        scheduler = SuccessiveHalvingScheduler(metric="total_welfare")
        score, cells = scheduler.score_arm(tmp_path / "camp")
        assert cells == 2  # two seed replicates
        assert score > 0

    def test_missing_metric_scores_nan(self, tmp_path):
        scheduler = SuccessiveHalvingScheduler(metric="no_such_metric")
        score, cells = scheduler.score_arm(tmp_path)
        assert cells == 0
        assert score != score  # NaN

    def test_score_arm_deduplicates_rerun_cells(self, tmp_path):
        # An interrupted-then-resumed cell appends two cell_finished
        # events; only its latest value may count, once.
        writer = EventWriter(tmp_path / EVENTS_NAME)
        writer.emit("cell_finished", cell_id="a", metrics={"total_welfare": 1.0})
        writer.emit("cell_finished", cell_id="a", metrics={"total_welfare": 3.0})
        writer.emit("cell_finished", cell_id="b", metrics={"total_welfare": 5.0})
        scheduler = SuccessiveHalvingScheduler(metric="total_welfare")
        score, cells = scheduler.score_arm(tmp_path)
        assert cells == 2
        assert score == pytest.approx(4.0)  # (3 + 5) / 2, not (1+3+5)/3


class TestSuccessiveHalving:
    def test_dominated_arms_stop_early_and_budget_grows(self, tmp_path):
        spec = small_spec(
            mechanisms=("lt-vcg", "random", "prop-share", "myopic-vcg")
        )
        result = run_successive_halving(
            spec, tmp_path / "halve", num_rungs=2, min_rounds=4,
            backend="inline",
        )
        assert len(result.rungs) == 2
        rung0, rung1 = result.rungs
        assert rung0.num_rounds == 4 and rung1.num_rounds == 8
        assert len(rung0.scores) == 4
        assert len(rung1.scores) == 2  # half were early-stopped
        assert set(rung0.survivors) == {arm.label for arm in rung1.scores}
        assert result.winner.label in rung0.survivors
        assert result.winner.score == result.rungs[-1].scores[0].score
        # 4 arms x 2 seeds at rung 0 + 2 arms x 2 seeds at rung 1.
        assert result.total_cells == 12
        # Early-stopped arms have no rung-1 campaign directory.
        rung1_dirs = {
            path.name for path in (tmp_path / "halve" / "rungs" / "1").iterdir()
        }
        assert rung1_dirs == set(rung0.survivors)

    def test_single_arm_runs_every_rung(self, tmp_path):
        result = run_successive_halving(
            small_spec(mechanisms=("lt-vcg",)), tmp_path / "halve",
            num_rungs=2, min_rounds=4, backend="inline",
        )
        assert result.total_cells == 4  # 2 seeds x 2 rungs
        assert result.rungs[-1].num_rounds == 8

    def test_resumable_mid_tournament(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg", "random"))
        kwargs = dict(num_rungs=2, min_rounds=4, backend="inline")
        first = run_successive_halving(spec, tmp_path / "halve", **kwargs)
        # A re-run resumes every rung campaign: nothing executes again.
        second = run_successive_halving(spec, tmp_path / "halve", **kwargs)
        assert second.total_cells == 0
        assert second.winner.label == first.winner.label
