"""Tests for repro.orchestration.report (aggregation and tables)."""

import pytest

from repro.config import ExperimentConfig
from repro.orchestration import (
    SweepSpec,
    aggregate_metric,
    campaign_report,
    event_log_tables,
    load_results,
    run_campaign,
    welfare_comparison_table,
)
from repro.orchestration.report import (
    failure_table,
    group_results,
    slice_event_logs,
    throughput_table,
)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    camp = tmp_path_factory.mktemp("report") / "camp"
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=6, num_rounds=8, max_winners=2, budget_per_round=2.0, v=10.0
        ),
        mechanisms=("lt-vcg", "random"),
        scenarios=("mechanism", "energy"),
        seeds=(0, 1, 2),
    )
    run_campaign(spec, camp, max_workers=0)
    return camp


class TestAggregation:
    def test_group_results(self, campaign):
        groups = group_results(load_results(campaign), by=("mechanism",))
        assert set(groups) == {("lt-vcg",), ("random",)}
        assert all(len(members) == 6 for members in groups.values())

    def test_aggregate_metric_summarises_across_seeds(self, campaign):
        stats = aggregate_metric(
            load_results(campaign),
            "total_welfare",
            by=("mechanism", "scenario"),
        )
        assert len(stats) == 4
        for summary in stats.values():
            assert summary.num_samples == 3
            assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_missing_metric_gives_empty(self, campaign):
        assert aggregate_metric(load_results(campaign), "no_such_metric") == {}


class TestTables:
    def test_welfare_comparison_table(self, campaign):
        table = welfare_comparison_table(load_results(campaign))
        assert "lt-vcg / mechanism" in table
        assert "random / energy" in table
        assert "welfare (mean)" in table

    def test_throughput_table(self, campaign):
        table = throughput_table(load_results(campaign))
        assert "rounds/sec" in table

    def test_failure_table_none_when_clean(self, campaign):
        assert failure_table(load_results(campaign)) is None

    def test_campaign_report_assembles_sections(self, campaign):
        text = campaign_report(campaign, include_event_logs=True)
        assert "12 completed" in text
        assert "Campaign welfare comparison" in text
        assert "Mechanism comparison" in text  # event-log slice section


class TestEventLogSlices:
    def test_slice_loads_one_log_per_mechanism(self, campaign):
        logs = slice_event_logs(load_results(campaign), scenario="energy", seed=1)
        assert set(logs) == {"lt-vcg", "random"}
        assert all(len(log) == 8 for log in logs.values())

    def test_event_log_tables(self, campaign):
        text = event_log_tables(campaign, scenario="mechanism", seed=0)
        assert "lt-vcg" in text
        assert "Payments vs. costs" in text

    def test_empty_campaign(self, tmp_path):
        assert event_log_tables(tmp_path / "void") is None

    def test_slice_title_matches_sliced_seed(self, tmp_path):
        # Seeds whose numeric and string orders differ (2 vs 10): the table
        # title and config must come from the cell actually tabulated.
        spec = SweepSpec(
            base=ExperimentConfig(num_clients=6, num_rounds=5, max_winners=2),
            mechanisms=("lt-vcg",),
            seeds=(2, 10),
        )
        run_campaign(spec, tmp_path / "camp", max_workers=0)
        text = event_log_tables(tmp_path / "camp")
        assert "seed=2" in text

    def test_campaign_directory_is_movable(self, tmp_path):
        spec = SweepSpec(
            base=ExperimentConfig(num_clients=6, num_rounds=5, max_winners=2),
            mechanisms=("lt-vcg",),
            seeds=(0,),
        )
        run_campaign(spec, tmp_path / "orig", max_workers=0)
        (tmp_path / "orig").rename(tmp_path / "moved")
        (result,) = load_results(tmp_path / "moved")
        assert result.event_log_path.startswith(str(tmp_path / "moved"))
        assert event_log_tables(tmp_path / "moved") is not None
