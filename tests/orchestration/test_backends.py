"""Backend-equivalence suite: every execution backend, both stores.

The execution backend and the result store are pure plumbing: the same
sweep must produce bit-identical per-cell metrics and identical
``completed_ids`` whether the cells ran inline, in a thread pool, in a
process pool, or through the durable work queue — and whether the results
landed in SQLite or in the columnar NPZ — including after a mid-campaign
kill+resume, and with several independent drainers sharing one queue.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.config import ExperimentConfig
from repro.orchestration import (
    EXECUTION_BACKENDS,
    STORE_BACKENDS,
    ResultStore,
    SweepSpec,
    WorkQueue,
    drain_queue,
    load_results,
    read_events,
    resolve_backend,
    resume_campaign,
    run_campaign,
)
from repro.orchestration.backends import (
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    WorkQueueBackend,
)
from repro.orchestration.events import EVENTS_NAME
from repro.orchestration.executor import CELLS_DIR_NAME
from repro.orchestration.queue import _LeaseHeartbeat

TIMING_KEYS = ("sim_seconds", "rounds_per_second")


def small_spec(**overrides):
    defaults = dict(
        base=ExperimentConfig(
            num_clients=6, num_rounds=8, max_winners=2, budget_per_round=2.0, v=10.0
        ),
        mechanisms=("lt-vcg", "prop-share"),
        scenarios=("mechanism",),
        seeds=(0, 1),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def stable_metrics(results):
    return {
        r.cell_id: {k: v for k, v in r.metrics.items() if k not in TIMING_KEYS}
        for r in results
        if r.completed
    }


class TestBackendResolution:
    def test_names_resolve(self, tmp_path):
        expected = {
            "inline": InlineBackend,
            "thread": ThreadBackend,
            "process": ProcessBackend,
            "work-queue": WorkQueueBackend,
        }
        assert set(expected) == set(EXECUTION_BACKENDS)
        for name, cls in expected.items():
            backend = resolve_backend(name, campaign_dir=tmp_path, max_workers=2)
            assert type(backend) is cls
            assert backend.name == name

    def test_default_keeps_historical_behaviour(self, tmp_path):
        assert isinstance(
            resolve_backend(None, campaign_dir=tmp_path, max_workers=0),
            InlineBackend,
        )
        assert isinstance(
            resolve_backend(None, campaign_dir=tmp_path, max_workers=2),
            ProcessBackend,
        )

    def test_instance_passes_through(self, tmp_path):
        backend = InlineBackend()
        assert resolve_backend(backend, campaign_dir=tmp_path) is backend

    def test_unknown_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("carrier-pigeon", campaign_dir=tmp_path)

    def test_capabilities(self, tmp_path):
        assert not InlineBackend.capabilities.parallel
        assert ThreadBackend.capabilities.parallel
        assert ProcessBackend.capabilities.parallel
        queue_caps = WorkQueueBackend.capabilities
        assert queue_caps.parallel and queue_caps.distributed
        assert queue_caps.durable_dispatch


class TestEquivalence:
    @pytest.mark.parametrize("store", STORE_BACKENDS)
    @pytest.mark.parametrize("backend", EXECUTION_BACKENDS)
    def test_all_backends_and_stores_agree(self, tmp_path, backend, store):
        """The acceptance matrix: 4 backends x 2 stores, one reference."""
        spec = small_spec()
        reference_dir = tmp_path / "reference"
        run_campaign(spec, reference_dir, backend="inline", store="sqlite")
        reference = load_results(reference_dir)

        target_dir = tmp_path / f"{backend}-{store}"
        summary = run_campaign(
            spec, target_dir, backend=backend, store=store, max_workers=2
        )
        assert summary.failed == 0
        results = load_results(target_dir)
        assert stable_metrics(results) == stable_metrics(reference)
        with ResultStore(target_dir) as target_store:
            with ResultStore(reference_dir) as reference_store:
                assert (
                    target_store.completed_ids()
                    == reference_store.completed_ids()
                )

    def test_stores_return_identical_rows(self, tmp_path):
        """Beyond metrics: params, status, attempts, artifact paths agree."""
        spec = small_spec(seeds=(3,))
        run_campaign(spec, tmp_path / "a", backend="inline", store="sqlite")
        run_campaign(spec, tmp_path / "b", backend="inline", store="columnar")
        rows_a = load_results(tmp_path / "a")
        rows_b = load_results(tmp_path / "b")
        assert len(rows_a) == len(rows_b) == 2
        for a, b in zip(rows_a, rows_b):
            assert a.cell_id == b.cell_id
            assert a.params == b.params
            assert a.status == b.status
            assert a.attempts == b.attempts
            assert stable_metrics([a]) == stable_metrics([b])
            # Paths resolve into each store's own campaign dir.
            assert a.event_log_path.endswith(
                f"{CELLS_DIR_NAME}/{a.cell_id}/event_log.json"
            )
            assert b.event_log_path.endswith(
                f"{CELLS_DIR_NAME}/{b.cell_id}/event_log.json"
            )


class TestKillAndResume:
    @pytest.mark.parametrize("store", STORE_BACKENDS)
    def test_interrupt_then_resume_matches_uninterrupted(self, tmp_path, store):
        spec = small_spec()  # 4 cells
        camp = tmp_path / "camp"

        def kill_after_two(outcome, done, total):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                spec, camp, backend="inline", store=store, progress=kill_after_two
            )

        with ResultStore(camp) as result_store:
            assert result_store.backend.name == store
            assert len(result_store.completed_ids()) == 2

        # Resume sniffs the store backend from the directory alone.
        summary = resume_campaign(camp, backend="inline")
        assert summary.skipped == 2
        assert summary.executed == 2
        run_campaign(spec, tmp_path / "fresh", backend="inline", store=store)
        assert stable_metrics(load_results(camp)) == stable_metrics(
            load_results(tmp_path / "fresh")
        )

    def test_work_queue_interrupt_then_resume(self, tmp_path):
        """Killing the coordinator mid-drain loses no completed cells."""
        spec = small_spec()
        camp = tmp_path / "camp"

        def kill_after_one(outcome, done, total):
            if done == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                spec, camp, backend="work-queue", max_workers=1,
                progress=kill_after_one,
            )

        # In-flight/acked-but-unrecorded outcomes are ingested on resume:
        # the queue's done/ files survive the coordinator.
        summary = resume_campaign(camp, backend="work-queue", max_workers=1)
        assert summary.failed == 0
        results = load_results(camp)
        assert len(stable_metrics(results)) == 4
        run_campaign(spec, tmp_path / "fresh", backend="inline")
        assert stable_metrics(results) == stable_metrics(
            load_results(tmp_path / "fresh")
        )


def _drain(campaign_dir: str, worker: str) -> None:
    drain_queue(campaign_dir, worker=worker, idle_timeout=20.0)


class TestWorkQueueSharing:
    def test_two_external_drainers_no_duplicated_or_lost_cells(self, tmp_path):
        """Two `repro.cli work`-style drainers share one campaign."""
        spec = small_spec(
            mechanisms=("lt-vcg", "prop-share", "greedy-first-price", "random")
        )  # 8 cells
        camp = tmp_path / "camp"
        context = multiprocessing.get_context()
        workers = [
            context.Process(target=_drain, args=(str(camp), f"external-{i}"))
            for i in range(2)
        ]
        for process in workers:
            process.start()
        try:
            # num_workers=0: the coordinator only enqueues and collects —
            # the external drainers do all the work.
            summary = run_campaign(
                spec, camp, backend="work-queue", max_workers=0
            )
        finally:
            for process in workers:
                process.join(timeout=30)
                assert process.exitcode == 0
        assert summary.failed == 0
        assert summary.executed == 8

        # Every cell ran exactly once, and nothing was lost.
        events = read_events(camp / EVENTS_NAME)
        finished = [e.cell_id for e in events if e.type == "cell_finished"]
        assert sorted(finished) == sorted(c.cell_id for c in spec.expand())
        assert len(set(finished)) == len(finished)

        # And the results match a plain inline run.
        run_campaign(spec, tmp_path / "fresh", backend="inline")
        assert stable_metrics(load_results(camp)) == stable_metrics(
            load_results(tmp_path / "fresh")
        )

    def test_lease_reclaim_recovers_a_crashed_worker(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        camp = tmp_path / "camp"
        queue = WorkQueue(camp, lease_seconds=0.2)
        (cell,) = spec.expand()
        payload = {
            "cell": cell.to_dict(),
            "cell_dir": str(camp / CELLS_DIR_NAME / cell.cell_id),
            "events_path": None,
        }
        assert queue.enqueue([payload]) == 1
        # Worker A claims and "crashes" (never acks).
        assert queue.claim("doomed") is not None
        assert queue.claim("other") is None  # nothing else to claim
        assert queue.counts() == {"pending": 0, "leased": 1, "done": 0}

        time.sleep(0.25)
        assert queue.reclaim_expired() == 1
        assert queue.counts()["pending"] == 1

        executed = drain_queue(camp, worker="rescuer", lease_seconds=5.0)
        assert executed == 1
        assert queue.counts() == {"pending": 0, "leased": 0, "done": 1}
        (outcome,) = queue.pop_outcomes()
        assert outcome["status"] == "completed"
        assert queue.counts()["done"] == 0

    def test_fresh_run_purges_stale_acked_outcomes(self, tmp_path):
        # --fresh promises every cell re-executes; a stale outcome left
        # in queue/done/ by a killed coordinator must not be replayed.
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        camp = tmp_path / "camp"
        run_campaign(spec, camp, backend="work-queue", max_workers=1)
        (cell,) = spec.expand()
        # Simulate a stale ack surviving from an interrupted run.
        WorkQueue(camp).ack(
            cell.cell_id,
            {
                "cell_id": cell.cell_id,
                "status": "completed",
                "metrics": {"rounds": -1},
                "duration_seconds": 0.0,
                "event_log_path": None,
            },
        )
        summary = run_campaign(
            spec, camp, backend="work-queue", max_workers=1, resume=False
        )
        assert summary.executed == 1 and summary.failed == 0
        (result,) = load_results(camp)
        assert result.metrics["rounds"] == 8  # re-executed, not replayed
        assert result.attempts == 2

    def test_enqueue_is_idempotent(self, tmp_path):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        queue = WorkQueue(tmp_path / "camp")
        (cell,) = spec.expand()
        payload = {"cell": cell.to_dict(), "cell_dir": None, "events_path": None}
        assert queue.enqueue([payload]) == 1
        assert queue.enqueue([payload]) == 0  # pending
        assert queue.claim("w") is not None
        assert queue.enqueue([payload]) == 0  # leased
        queue.ack(cell.cell_id, {"cell_id": cell.cell_id, "status": "completed"})
        assert queue.enqueue([payload]) == 0  # done


class TestLeaseOwnership:
    """Heartbeats, fencing, and concurrent reclaim on the shared queue."""

    def _claimed(self, tmp_path, lease_seconds):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        queue = WorkQueue(tmp_path / "camp", lease_seconds=lease_seconds)
        (cell,) = spec.expand()
        payload = {"cell": cell.to_dict(), "cell_dir": None, "events_path": None}
        assert queue.enqueue([payload]) == 1
        assert queue.claim("holder") is not None
        return queue, cell.cell_id

    def test_concurrent_reclaim_from_two_coordinators(self, tmp_path):
        # Two coordinators sweeping the same expired lease: the atomic
        # rename means exactly one wins — the cell is requeued once, not
        # twice, and the loser's FileNotFoundError is swallowed.
        queue_a, cell_id = self._claimed(tmp_path, lease_seconds=0.1)
        queue_b = WorkQueue(tmp_path / "camp", lease_seconds=0.1)
        time.sleep(0.15)
        reclaimed = []
        barrier = threading.Barrier(2)

        def sweep(queue):
            barrier.wait()
            reclaimed.append(queue.reclaim_expired())

        threads = [
            threading.Thread(target=sweep, args=(q,))
            for q in (queue_a, queue_b)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sum(reclaimed) == 1
        assert queue_a.counts() == {"pending": 1, "leased": 0, "done": 0}

    def test_heartbeat_keeps_lease_alive_past_lease_seconds(self, tmp_path):
        # A heartbeat-extended lease survives 3x lease_seconds of wall
        # time; once the ticker stops, expiry resumes normally.
        queue, cell_id = self._claimed(tmp_path, lease_seconds=0.3)
        ticker = _LeaseHeartbeat(queue, cell_id, "holder")
        try:
            time.sleep(0.9)
            assert queue.reclaim_expired() == 0
            assert queue.owns_lease(cell_id, "holder")
        finally:
            assert ticker.stop()  # never lost the lease
        time.sleep(0.35)
        assert queue.reclaim_expired() == 1

    def test_heartbeat_reports_lost_lease(self, tmp_path):
        queue, cell_id = self._claimed(tmp_path, lease_seconds=0.2)
        ticker = _LeaseHeartbeat(queue, cell_id, "holder")
        # A reclaimer (clock skew, manual surgery) yanks the lease away.
        os.rename(
            queue.leases_dir / f"{cell_id}.json",
            queue.tasks_dir / f"{cell_id}.json",
        )
        (queue.leases_dir / f"{cell_id}.claim.json").unlink()
        assert ticker._lost.wait(timeout=5.0)
        assert not ticker.stop()  # latched: execution is now speculative

    def test_extend_lease_denied_for_non_owner(self, tmp_path):
        queue, cell_id = self._claimed(tmp_path, lease_seconds=30.0)
        assert queue.extend_lease(cell_id, "holder")
        assert not queue.extend_lease(cell_id, "impostor")
        assert queue.owns_lease(cell_id, "holder")

    def test_extend_lease_after_reclaim_leaves_no_orphan_sidecar(self, tmp_path):
        queue, cell_id = self._claimed(tmp_path, lease_seconds=0.1)
        time.sleep(0.15)
        assert queue.reclaim_expired() == 1
        assert not queue.extend_lease(cell_id, "holder")
        assert not list(queue.leases_dir.glob("*.claim.json"))

    def test_ack_owned_fences_stale_worker(self, tmp_path):
        # The stalled worker's lease was reclaimed and re-claimed by
        # someone else: its late ack must be refused, not double-deliver.
        queue, cell_id = self._claimed(tmp_path, lease_seconds=0.1)
        time.sleep(0.15)
        assert queue.reclaim_expired() == 1
        assert queue.claim("rescuer") is not None
        assert not queue.ack_owned(cell_id, "holder", {"cell_id": cell_id})
        assert queue.counts()["done"] == 0
        assert queue.ack_owned(cell_id, "rescuer", {"cell_id": cell_id})
        assert queue.counts()["done"] == 1


class TestLeaseClocks:
    """Lease expiry prefers the monotonic clock over adjustable wall time."""

    def _claimed_queue(self, tmp_path, lease_seconds=30.0):
        spec = small_spec(mechanisms=("lt-vcg",), seeds=(0,))
        queue = WorkQueue(tmp_path / "camp", lease_seconds=lease_seconds)
        (cell,) = spec.expand()
        payload = {"cell": cell.to_dict(), "cell_dir": None, "events_path": None}
        assert queue.enqueue([payload]) == 1
        assert queue.claim("w") is not None
        (claim_path,) = queue.leases_dir.glob("*.claim.json")
        return queue, claim_path

    def test_claim_sidecar_records_both_clocks(self, tmp_path):
        _, claim_path = self._claimed_queue(tmp_path)
        claim = json.loads(claim_path.read_text())
        assert {"worker", "claimed_at", "monotonic", "host"} <= claim.keys()

    def test_wall_clock_jump_does_not_expire_live_lease(self, tmp_path):
        # An NTP step (or manual clock change) makes the wall-clock age
        # look huge, but the same-host monotonic reading says the lease is
        # fresh — it must stay held.
        queue, claim_path = self._claimed_queue(tmp_path)
        claim = json.loads(claim_path.read_text())
        claim["claimed_at"] -= 3600.0
        claim_path.write_text(json.dumps(claim))
        assert queue.reclaim_expired() == 0
        assert queue.counts()["leased"] == 1

    def test_remote_host_falls_back_to_wall_clock(self, tmp_path):
        # A sidecar written on another host carries a monotonic reading
        # from a foreign clock: only the wall timestamp is comparable.
        queue, claim_path = self._claimed_queue(tmp_path)
        claim = json.loads(claim_path.read_text())
        claim["claimed_at"] -= 3600.0
        claim["host"] = claim["host"] + "-elsewhere"
        claim_path.write_text(json.dumps(claim))
        assert queue.reclaim_expired() == 1
        assert queue.counts()["pending"] == 1

    def test_rebooted_host_negative_age_falls_back(self, tmp_path):
        # A reboot restarts the monotonic clock, so a pre-reboot reading
        # can exceed the current one (negative age); expiry must then
        # trust the wall clock instead of immortalising the lease.
        queue, claim_path = self._claimed_queue(tmp_path)
        claim = json.loads(claim_path.read_text())
        claim["claimed_at"] -= 3600.0
        claim["monotonic"] += 1e9
        claim_path.write_text(json.dumps(claim))
        assert queue.reclaim_expired() == 1

    def test_legacy_sidecar_without_monotonic_still_expires(self, tmp_path):
        queue, claim_path = self._claimed_queue(tmp_path)
        claim_path.write_text(
            json.dumps({"worker": "w", "claimed_at": time.time() - 3600.0})
        )
        assert queue.reclaim_expired() == 1
