"""Tests for repro.orchestration.store (both StoreBackend implementations)."""

import json

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.orchestration.columnar import ColumnarStoreBackend
from repro.orchestration.store import (
    STORE_BACKENDS,
    ResultStore,
    SqliteJsonlBackend,
    detect_store_backend,
)
from repro.orchestration.sweep import SweepSpec


def one_cell():
    spec = SweepSpec(
        base=ExperimentConfig(num_clients=6, num_rounds=5, max_winners=2),
        mechanisms=("lt-vcg",),
        seeds=(0,),
    )
    return spec.expand()[0]


METRICS = {"total_welfare": 12.5, "average_payment": 1.25, "rounds": 5}


@pytest.fixture(params=STORE_BACKENDS)
def backend_name(request):
    return request.param


class TestWrites:
    def test_success_round_trip(self, tmp_path, backend_name):
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            store.record_success(
                cell, METRICS, duration_seconds=0.5, event_log_path="cells/x/log.json"
            )
            (result,) = store.results()
        assert result.cell_id == cell.cell_id
        assert result.completed
        assert result.metrics["total_welfare"] == 12.5
        assert result.metrics["rounds"] == 5  # int stays int
        assert result.duration_seconds == 0.5
        # Relative artifact paths resolve against the campaign directory,
        # so a moved campaign keeps working.
        assert result.event_log_path == str(tmp_path / "cells/x/log.json")
        assert result.attempts == 1

    def test_failure_round_trip(self, tmp_path, backend_name):
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            store.record_failure(cell, "Traceback: boom", duration_seconds=0.1)
            (result,) = store.results()
        assert result.status == "failed"
        assert not result.completed
        assert "boom" in result.error
        assert result.metrics == {}

    def test_rerecord_bumps_attempts(self, tmp_path, backend_name):
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            store.record_failure(cell, "first try died")
            store.record_success(cell, METRICS)
            (result,) = store.results()
            assert result.attempts == 2
            assert result.completed
            assert store.counts() == {"completed": 1}

    def test_attempts_is_a_delta_per_record(self, tmp_path, backend_name):
        # A retried cell records once with the attempts it burned; a later
        # re-record (e.g. --retry-failed in a new invocation) accumulates
        # on top of what the store already holds.
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            store.record_failure(cell, "exhausted retries", attempts=3)
            (result,) = store.results()
            assert result.attempts == 3
            store.record_success(cell, METRICS, attempts=2)
            (result,) = store.results()
            assert result.attempts == 5
            assert result.completed

    def test_exception_type_round_trip(self, tmp_path, backend_name):
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            store.record_failure(
                cell, "Traceback: boom", exception_type="ValueError"
            )
            (result,) = store.results()
            assert result.exception_type == "ValueError"
        # Survives a reopen (SQLite reads the column back; columnar
        # round-trips it through the NPZ snapshot).
        with ResultStore(tmp_path) as store:
            (result,) = store.results()
            assert result.exception_type == "ValueError"
            # A success clears the classification.
            store.record_success(cell, METRICS)
            (result,) = store.results()
            assert result.exception_type is None


class TestCheckpoint:
    def test_completed_ids_survive_reopen(self, tmp_path, backend_name):
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            store.record_success(cell, METRICS)
        # A brand-new store over the same directory sees the checkpoint —
        # this is what resume-after-kill reads.  Note the reopen does not
        # name the backend: it is sniffed from the files on disk.
        with ResultStore(tmp_path) as store:
            assert store.backend.name == backend_name
            assert store.completed_ids() == {cell.cell_id}

    def test_failed_cells_not_in_checkpoint(self, tmp_path, backend_name):
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            store.record_failure(cell, "nope")
            assert store.completed_ids() == set()

    def test_get(self, tmp_path, backend_name):
        cell = one_cell()
        with ResultStore(tmp_path, backend=backend_name) as store:
            assert store.get(cell.cell_id) is None
            store.record_success(cell, METRICS)
            assert store.get(cell.cell_id).completed


class TestBackendSelection:
    def test_detect_store_backend(self, tmp_path):
        assert detect_store_backend(tmp_path) is None
        with ResultStore(tmp_path / "a", backend="sqlite") as store:
            store.record_success(one_cell(), METRICS)
        assert detect_store_backend(tmp_path / "a") == "sqlite"
        with ResultStore(tmp_path / "b", backend="columnar") as store:
            store.record_success(one_cell(), METRICS)
        assert detect_store_backend(tmp_path / "b") == "columnar"

    def test_unknown_backend_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            ResultStore(tmp_path, backend="clay-tablets")

    def test_conflicting_explicit_backend_is_refused(self, tmp_path):
        # Opening an existing campaign under a different store would fork
        # its results (writes to the new store, reads from the old one).
        with ResultStore(tmp_path, backend="sqlite") as store:
            store.record_success(one_cell(), METRICS)
        with pytest.raises(ValueError, match="cannot be reopened"):
            ResultStore(tmp_path, backend="columnar")

    def test_backend_instance_passes_through(self, tmp_path):
        backend = SqliteJsonlBackend(tmp_path)
        store = ResultStore(tmp_path, backend=backend)
        assert store.backend is backend

    def test_backends_agree_on_identical_records(self, tmp_path):
        """The same writes read back identically from both backends."""
        cell = one_cell()
        rich_metrics = {
            **METRICS,
            "budget_compliant": True,
            "mechanism": "lt-vcg",
            "per_round_regret": [0.5, 0.25, 0.0],
        }
        rows = {}
        for name in STORE_BACKENDS:
            with ResultStore(tmp_path / name, backend=name) as store:
                store.record_failure(cell, "first attempt")
                store.record_success(
                    cell, rich_metrics, duration_seconds=1.5,
                    event_log_path="cells/x/log.json",
                )
                (row,) = store.results()
                rows[name] = row
        sqlite_row, columnar_row = rows["sqlite"], rows["columnar"]
        assert sqlite_row.metrics == columnar_row.metrics
        assert sqlite_row.params == columnar_row.params
        assert sqlite_row.attempts == columnar_row.attempts == 2
        assert sqlite_row.status == columnar_row.status


class TestJsonlMirror:
    def test_every_record_appends_a_line(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path, backend="sqlite") as store:
            store.record_failure(cell, "first try died")
            store.record_success(cell, METRICS)
        lines = (tmp_path / ResultStore.JSONL_NAME).read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["status"] == "failed" and first["attempt"] == 1
        assert second["status"] == "completed" and second["attempt"] == 2
        assert second["metrics"]["total_welfare"] == 12.5


class TestColumnarSpecifics:
    def test_float_metrics_pack_into_the_matrix(self, tmp_path):
        backend = ColumnarStoreBackend(tmp_path)
        backend.record(
            one_cell(), status="completed", metrics=METRICS, error=None,
            duration_seconds=0.5, event_log_path=None,
        )
        backend.close()
        with np.load(tmp_path / ColumnarStoreBackend.NPZ_NAME) as archive:
            keys = [str(key) for key in archive["metric_keys"]]
            # Floats live in the matrix; the int metric rides the residual.
            assert "total_welfare" in keys and "average_payment" in keys
            assert "rounds" not in keys
            residual = json.loads(str(archive["residual_metrics"][0]))
            assert residual == {"rounds": 5}
            column = keys.index("total_welfare")
            assert archive["metric_values"][0, column] == 12.5
            assert bool(archive["metric_mask"][0, column])

    def test_metric_column_fast_path(self, tmp_path):
        backend = ColumnarStoreBackend(tmp_path)
        for seed in range(3):
            spec = SweepSpec(
                base=ExperimentConfig(num_clients=6, num_rounds=5, max_winners=2),
                mechanisms=("lt-vcg",),
                seeds=(seed,),
            )
            (cell,) = spec.expand()
            backend.record(
                cell, status="completed",
                metrics={"total_welfare": float(seed)}, error=None,
                duration_seconds=0.0, event_log_path=None,
            )
        cell_ids, values = backend.metric_column("total_welfare")
        assert len(cell_ids) == 3
        np.testing.assert_array_equal(values, [0.0, 1.0, 2.0])

    def test_every_record_is_durable_by_default(self, tmp_path):
        """flush_every=1: a freshly recorded row survives an abrupt kill
        (simulated by abandoning the backend without close)."""
        backend = ColumnarStoreBackend(tmp_path)
        backend.record(
            one_cell(), status="completed", metrics=METRICS, error=None,
            duration_seconds=0.0, event_log_path=None,
        )
        # No close(): a second backend over the directory must see the row.
        reopened = ColumnarStoreBackend(tmp_path)
        assert reopened.completed_ids() == {one_cell().cell_id}

    def test_flush_every_batches_writes(self, tmp_path):
        backend = ColumnarStoreBackend(tmp_path, flush_every=10)
        backend.record(
            one_cell(), status="completed", metrics=METRICS, error=None,
            duration_seconds=0.0, event_log_path=None,
        )
        assert not (tmp_path / ColumnarStoreBackend.NPZ_NAME).exists()
        backend.close()  # close always flushes
        assert (tmp_path / ColumnarStoreBackend.NPZ_NAME).exists()
        assert ColumnarStoreBackend(tmp_path).counts() == {"completed": 1}

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            ColumnarStoreBackend(tmp_path, flush_every=0)
