"""Tests for repro.orchestration.store (SQLite + JSONL persistence)."""

import json

from repro.config import ExperimentConfig
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import SweepSpec


def one_cell():
    spec = SweepSpec(
        base=ExperimentConfig(num_clients=6, num_rounds=5, max_winners=2),
        mechanisms=("lt-vcg",),
        seeds=(0,),
    )
    return spec.expand()[0]


METRICS = {"total_welfare": 12.5, "average_payment": 1.25, "rounds": 5}


class TestWrites:
    def test_success_round_trip(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path) as store:
            store.record_success(
                cell, METRICS, duration_seconds=0.5, event_log_path="cells/x/log.json"
            )
            (result,) = store.results()
        assert result.cell_id == cell.cell_id
        assert result.completed
        assert result.metrics["total_welfare"] == 12.5
        assert result.duration_seconds == 0.5
        # Relative artifact paths resolve against the campaign directory,
        # so a moved campaign keeps working.
        assert result.event_log_path == str(tmp_path / "cells/x/log.json")
        assert result.attempts == 1

    def test_failure_round_trip(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path) as store:
            store.record_failure(cell, "Traceback: boom", duration_seconds=0.1)
            (result,) = store.results()
        assert result.status == "failed"
        assert not result.completed
        assert "boom" in result.error
        assert result.metrics == {}

    def test_rerecord_bumps_attempts(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path) as store:
            store.record_failure(cell, "first try died")
            store.record_success(cell, METRICS)
            (result,) = store.results()
            assert result.attempts == 2
            assert result.completed
            assert store.counts() == {"completed": 1}


class TestCheckpoint:
    def test_completed_ids_survive_reopen(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path) as store:
            store.record_success(cell, METRICS)
        # A brand-new store over the same directory sees the checkpoint —
        # this is what resume-after-kill reads.
        with ResultStore(tmp_path) as store:
            assert store.completed_ids() == {cell.cell_id}

    def test_failed_cells_not_in_checkpoint(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path) as store:
            store.record_failure(cell, "nope")
            assert store.completed_ids() == set()

    def test_get(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path) as store:
            assert store.get(cell.cell_id) is None
            store.record_success(cell, METRICS)
            assert store.get(cell.cell_id).completed


class TestJsonlMirror:
    def test_every_record_appends_a_line(self, tmp_path):
        cell = one_cell()
        with ResultStore(tmp_path) as store:
            store.record_failure(cell, "first try died")
            store.record_success(cell, METRICS)
        lines = (tmp_path / ResultStore.JSONL_NAME).read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["status"] == "failed" and first["attempt"] == 1
        assert second["status"] == "completed" and second["attempt"] == 2
        assert second["metrics"]["total_welfare"] == 12.5
