"""Tests for repro.orchestration.sweep (grid expansion)."""

import pytest

from repro.config import ExperimentConfig
from repro.orchestration.sweep import SCENARIO_NAMES, CellSpec, SweepSpec


def small_spec(**overrides):
    defaults = dict(
        base=ExperimentConfig(num_clients=6, num_rounds=10, max_winners=2),
        mechanisms=("lt-vcg", "random"),
        scenarios=("mechanism", "energy"),
        seeds=(0, 1, 2),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExpansion:
    def test_grid_size(self):
        spec = small_spec()
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 3
        assert spec.num_cells == len(cells)

    def test_param_axes_multiply(self):
        spec = small_spec(params={"budget_per_round": (2.0, 5.0)})
        assert spec.num_cells == 2 * 2 * 3 * 2
        budgets = {cell.config.budget_per_round for cell in spec.expand()}
        assert budgets == {2.0, 5.0}

    def test_cell_ids_unique_and_stable(self):
        first = [cell.cell_id for cell in small_spec().expand()]
        second = [cell.cell_id for cell in small_spec().expand()]
        assert first == second
        assert len(set(first)) == len(first)

    def test_config_resolution(self):
        spec = small_spec(
            mechanisms=("fixed-price",),
            scenarios=("fl-energy",),
            seeds=(7,),
            params={"price": (0.5,), "v": (25.0,)},
        )
        (cell,) = spec.expand()
        assert cell.config.extras["mechanism"] == "fixed-price"
        assert cell.config.extras["fl"] is True
        assert cell.config.energy_constrained is True
        assert cell.config.seed == 7
        # Param axes: config fields override fields, unknown keys go to extras.
        assert cell.config.v == 25.0
        assert cell.config.extras["price"] == 0.5

    def test_environment_seed_is_the_axis_value(self):
        # Cross-mechanism pairing: cells sharing a seed axis value face an
        # identical environment because config.seed is exactly that value.
        for cell in small_spec().expand():
            assert cell.config.seed == cell.seed
        # Stable across re-expansion (resume relies on this).
        assert small_spec().expand() == small_spec().expand()


class TestValidation:
    def test_unknown_mechanism(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            small_spec(mechanisms=("alchemy",))

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            small_spec(scenarios=("underwater",))

    def test_empty_axes(self):
        with pytest.raises(ValueError, match="non-empty"):
            small_spec(seeds=())
        with pytest.raises(ValueError, match="non-empty"):
            small_spec(params={"v": ()})

    def test_reserved_param_axes_rejected(self):
        # A 'mechanism' or 'seed' param would desynchronise cell labels
        # from what the cell actually simulates.
        for axis in ("mechanism", "seed", "fl", "energy_constrained"):
            with pytest.raises(ValueError, match="reserved"):
                small_spec(params={axis: (1,)})

    def test_scenario_names_cover_substrates(self):
        assert set(SCENARIO_NAMES) == {"mechanism", "energy", "fl", "fl-energy"}


class TestRoundTrip:
    def test_spec_json_round_trip(self, tmp_path):
        spec = small_spec(params={"budget_per_round": (2.0, 5.0)}, name="rt")
        path = tmp_path / "sweep.json"
        spec.save(path)
        loaded = SweepSpec.load(path)
        assert loaded == spec
        assert [c.cell_id for c in loaded.expand()] == [
            c.cell_id for c in spec.expand()
        ]

    def test_cell_dict_round_trip(self):
        (cell,) = small_spec(
            mechanisms=("lt-vcg",), scenarios=("mechanism",), seeds=(3,)
        ).expand()
        assert CellSpec.from_dict(cell.to_dict()) == cell
