"""Tests for repro.mechanisms.offline_optimal."""

import numpy as np
import pytest

from repro.core.bids import AuctionRound, Bid
from repro.mechanisms.offline_optimal import OfflineOptimalPlanner, OfflinePlanMechanism
from tests.conftest import make_round


def horizon(rng, num_rounds, n):
    rounds = []
    for t in range(num_rounds):
        costs = rng.uniform(0.2, 1.5, n)
        values = rng.uniform(0.1, 3.0, n)
        rounds.append(
            AuctionRound(
                index=t,
                bids=tuple(Bid(client_id=i, cost=float(costs[i])) for i in range(n)),
                values={i: float(values[i]) for i in range(n)},
            )
        )
    return rounds


class TestPlanner:
    def test_respects_total_budget(self, rng):
        rounds = horizon(rng, 30, 6)
        planner = OfflineOptimalPlanner(total_budget=10.0, max_winners_per_round=3)
        plan = planner.plan(rounds)
        assert plan.total_cost <= 10.0 + 1e-9

    def test_respects_per_round_cap(self, rng):
        rounds = horizon(rng, 20, 8)
        planner = OfflineOptimalPlanner(total_budget=1e6, max_winners_per_round=2)
        plan = planner.plan(rounds)
        assert all(len(ids) <= 2 for ids in plan.selections.values())

    def test_only_positive_welfare_selected(self, rng):
        rounds = horizon(rng, 10, 5)
        plan = OfflineOptimalPlanner(total_budget=1e6).plan(rounds)
        for auction_round in rounds:
            for cid in plan.selections.get(auction_round.index, ()):
                welfare = auction_round.values[cid] - auction_round.bid_of(cid).cost
                assert welfare > 0

    def test_unconstrained_takes_all_positive(self, rng):
        rounds = horizon(rng, 10, 5)
        plan = OfflineOptimalPlanner(total_budget=1e6).plan(rounds)
        expected = sum(
            max(r.values[i] - r.bid_of(i).cost, 0.0)
            for r in rounds
            for i in range(5)
        )
        assert plan.total_welfare == pytest.approx(expected)

    def test_true_cost_override(self):
        auction_round = make_round([10.0], [2.0])  # bid 10, value 2: looks bad
        planner = OfflineOptimalPlanner(total_budget=5.0)
        plan = planner.plan([auction_round], true_costs={0: {0: 0.5}})
        assert plan.selections[0] == (0,)
        assert plan.total_welfare == pytest.approx(1.5)

    def test_budget_binds_chooses_densest(self):
        # Two candidates, budget for one: welfare densities 4/1 vs 2/1.
        auction_round = make_round([1.0, 1.0], [5.0, 3.0])
        plan = OfflineOptimalPlanner(total_budget=1.0).plan([auction_round])
        assert plan.selections[0] == (0,)

    def test_welfare_weakly_increases_with_budget(self, rng):
        rounds = horizon(rng, 25, 6)
        welfares = [
            OfflineOptimalPlanner(total_budget=b, max_winners_per_round=3)
            .plan(rounds)
            .total_welfare
            for b in (2.0, 10.0, 50.0)
        ]
        assert welfares == sorted(welfares)

    def test_validation(self):
        with pytest.raises(ValueError):
            OfflineOptimalPlanner(total_budget=0.0)
        with pytest.raises(ValueError):
            OfflineOptimalPlanner(total_budget=1.0, max_winners_per_round=0)


class TestOfflinePlanMechanism:
    def test_replays_plan(self, rng):
        rounds = horizon(rng, 5, 4)
        plan = OfflineOptimalPlanner(total_budget=5.0, max_winners_per_round=2).plan(
            rounds
        )
        mechanism = OfflinePlanMechanism(plan)
        for auction_round in rounds:
            outcome = mechanism.run_round(auction_round)
            assert outcome.selected == plan.selections.get(auction_round.index, ())

    def test_pays_costs(self, rng):
        rounds = horizon(rng, 5, 4)
        plan = OfflineOptimalPlanner(total_budget=5.0).plan(rounds)
        mechanism = OfflinePlanMechanism(plan)
        for auction_round in rounds:
            outcome = mechanism.run_round(auction_round)
            for cid in outcome.selected:
                assert outcome.payments[cid] == auction_round.bid_of(cid).cost

    def test_skips_unavailable_planned_clients(self, rng):
        rounds = horizon(rng, 3, 4)
        plan = OfflineOptimalPlanner(total_budget=100.0).plan(rounds)
        mechanism = OfflinePlanMechanism(plan)
        reduced = rounds[0].without_client(rounds[0].client_ids[0])
        outcome = mechanism.run_round(reduced)
        assert rounds[0].client_ids[0] not in outcome.selected
