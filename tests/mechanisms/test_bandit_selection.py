"""Tests for repro.mechanisms.bandit_selection."""

import numpy as np
import pytest

from repro.core.properties import verify_truthfulness
from repro.mechanisms.bandit_selection import EpsilonGreedyMechanism
from tests.conftest import make_round, random_instance


def mechanism(epsilon=0.1, budget=5.0, k=3, seed=0, **kw):
    return EpsilonGreedyMechanism(
        budget, k, epsilon=epsilon, rng=np.random.default_rng(seed), **kw
    )


class TestEpsilonGreedy:
    def test_budget_and_cap_respected(self, rng):
        for _ in range(20):
            auction_round, _ = random_instance(rng, 8)
            outcome = mechanism(budget=2.0, k=3).run_round(auction_round)
            assert outcome.total_payment <= 2.0 + 1e-9
            assert len(outcome.selected) <= 3

    def test_pays_bids(self, simple_round):
        outcome = mechanism(epsilon=0.0).run_round(simple_round)
        for cid in outcome.selected:
            assert outcome.payments[cid] == simple_round.bid_of(cid).cost

    def test_exploitation_prefers_observed_quality(self):
        mech = mechanism(epsilon=0.0, k=1)
        # Client 1 has demonstrated 10x the contribution of client 0.
        for _ in range(5):
            mech.observe_contributions({0: 0.1, 1: 1.0})
        auction_round = make_round([0.5, 0.5], [1.0, 1.0])
        outcome = mech.run_round(auction_round)
        assert outcome.selected == (1,)

    def test_optimism_selects_unknown_first(self):
        mech = mechanism(epsilon=0.0, k=1, optimistic_value=5.0)
        mech.observe_contributions({0: 0.5})
        auction_round = make_round([0.5, 0.5], [1.0, 1.0])
        outcome = mech.run_round(auction_round)
        assert outcome.selected == (1,)  # unobserved -> optimistic

    def test_exploration_covers_everyone(self):
        mech = mechanism(epsilon=1.0, k=1, seed=3)
        auction_round = make_round([0.5] * 5, [1.0] * 5)
        winners = set()
        for t in range(200):
            outcome = mech.run_round(
                make_round([0.5] * 5, [1.0] * 5, index=t)
            )
            winners.update(outcome.selected)
        assert winners == {0, 1, 2, 3, 4}

    def test_not_truthful(self, rng):
        """Pay-as-bid: deviation gains exist — the contrast with LT-VCG."""
        auction_round, costs = random_instance(rng, 6)
        report = verify_truthfulness(
            lambda: mechanism(epsilon=0.0, budget=10.0), auction_round, costs
        )
        assert not report.is_truthful

    def test_efficiency_tie_break_deterministic(self):
        mech = mechanism(epsilon=0.0, k=2)
        auction_round = make_round([0.5, 0.5, 0.5], [1.0, 1.0, 1.0])
        outcome = mech.run_round(auction_round)
        assert outcome.selected == (0, 1)

    def test_reset(self):
        mech = mechanism()
        mech.observe_contributions({0: 1.0})
        mech.reset()
        assert mech.estimate_of(0) == mech.optimistic_value

    def test_validation(self):
        with pytest.raises(ValueError):
            mechanism(budget=0.0)
        with pytest.raises(ValueError):
            mechanism(epsilon=1.5)
        with pytest.raises(ValueError):
            EpsilonGreedyMechanism(1.0, 0, rng=np.random.default_rng(0))
        mech = mechanism()
        with pytest.raises(ValueError):
            mech.observe_contributions({0: -1.0})
