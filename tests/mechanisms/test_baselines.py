"""Tests for the baseline mechanisms."""

import numpy as np
import pytest

from repro.core.properties import verify_individual_rationality, verify_truthfulness
from repro.mechanisms import (
    AllAvailableMechanism,
    FixedPriceMechanism,
    GreedyFirstPriceMechanism,
    MyopicVCGMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)
from tests.conftest import make_round, random_instance


class TestRandomSelection:
    def test_selects_at_most_k(self, simple_round):
        mechanism = RandomSelectionMechanism(2, np.random.default_rng(0))
        outcome = mechanism.run_round(simple_round)
        assert len(outcome.selected) == 2

    def test_selects_all_when_unlimited(self, simple_round):
        mechanism = RandomSelectionMechanism(None, np.random.default_rng(0))
        outcome = mechanism.run_round(simple_round)
        assert outcome.selected == tuple(sorted(simple_round.client_ids))

    def test_pays_bids(self, simple_round):
        mechanism = RandomSelectionMechanism(3, np.random.default_rng(0))
        outcome = mechanism.run_round(simple_round)
        for cid in outcome.selected:
            assert outcome.payments[cid] == simple_round.bid_of(cid).cost

    def test_ignores_values_uniform_coverage(self, rng):
        """Over many rounds every client is picked at roughly equal rates."""
        mechanism = RandomSelectionMechanism(1, rng)
        counts = {i: 0 for i in range(4)}
        auction_round = make_round([1.0] * 4, [0.1, 1.0, 10.0, 100.0])
        for _ in range(2000):
            outcome = mechanism.run_round(auction_round)
            counts[outcome.selected[0]] += 1
        rates = np.array(list(counts.values())) / 2000
        assert np.all(np.abs(rates - 0.25) < 0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSelectionMechanism(0, np.random.default_rng(0))


class TestFixedPrice:
    def test_only_acceptors_win(self):
        mechanism = FixedPriceMechanism(price=1.0)
        auction_round = make_round([0.5, 1.5, 0.9], [1.0, 1.0, 1.0])
        outcome = mechanism.run_round(auction_round)
        assert outcome.selected == (0, 2)

    def test_everyone_paid_posted_price(self):
        mechanism = FixedPriceMechanism(price=1.0)
        auction_round = make_round([0.5, 0.9], [1.0, 1.0])
        outcome = mechanism.run_round(auction_round)
        assert all(p == 1.0 for p in outcome.payments.values())

    def test_cap_takes_highest_value(self):
        mechanism = FixedPriceMechanism(price=1.0, max_winners=1)
        auction_round = make_round([0.5, 0.5], [1.0, 2.0])
        outcome = mechanism.run_round(auction_round)
        assert outcome.selected == (1,)

    def test_truthful(self, rng):
        auction_round, costs = random_instance(rng, 6)
        report = verify_truthfulness(
            lambda: FixedPriceMechanism(price=1.0, max_winners=3),
            auction_round,
            costs,
        )
        assert report.is_truthful

    def test_ir(self, rng):
        auction_round, _ = random_instance(rng, 6)
        outcome = FixedPriceMechanism(price=1.0).run_round(auction_round)
        assert verify_individual_rationality(outcome, auction_round) == []


class TestGreedyFirstPrice:
    def test_budget_never_exceeded(self, rng):
        for _ in range(20):
            auction_round, _ = random_instance(rng, 8)
            outcome = GreedyFirstPriceMechanism(2.0, 5).run_round(auction_round)
            assert outcome.total_payment <= 2.0 + 1e-9

    def test_density_order(self):
        auction_round = make_round([1.0, 0.5], [1.0, 1.0])
        outcome = GreedyFirstPriceMechanism(0.5).run_round(auction_round)
        assert outcome.selected == (1,)  # higher value density, fits budget

    def test_not_truthful(self, rng):
        """Pay-as-bid: a winner profits by bidding above its cost."""
        auction_round, costs = random_instance(rng, 6)
        report = verify_truthfulness(
            lambda: GreedyFirstPriceMechanism(10.0, 3), auction_round, costs
        )
        assert not report.is_truthful

    def test_pays_exact_bids(self, simple_round):
        outcome = GreedyFirstPriceMechanism(10.0).run_round(simple_round)
        for cid in outcome.selected:
            assert outcome.payments[cid] == simple_round.bid_of(cid).cost


class TestProportionalShare:
    def test_budget_feasible(self, rng):
        for _ in range(30):
            auction_round, _ = random_instance(rng, 8)
            outcome = ProportionalShareMechanism(3.0).run_round(auction_round)
            assert outcome.total_payment <= 3.0 + 1e-6

    def test_ir(self, rng):
        for _ in range(20):
            auction_round, _ = random_instance(rng, 8)
            outcome = ProportionalShareMechanism(3.0).run_round(auction_round)
            assert verify_individual_rationality(outcome, auction_round) == []

    def test_empty_on_impossible_budget(self):
        auction_round = make_round([5.0, 6.0], [0.1, 0.1])
        outcome = ProportionalShareMechanism(0.01).run_round(auction_round)
        assert outcome.selected == ()

    def test_max_winners(self, rng):
        auction_round, _ = random_instance(rng, 8, cost_range=(0.01, 0.05))
        outcome = ProportionalShareMechanism(10.0, max_winners=2).run_round(
            auction_round
        )
        assert len(outcome.selected) <= 2

    def test_cheap_high_value_clients_win_first(self):
        auction_round = make_round([0.1, 0.1, 2.0], [2.0, 1.0, 0.5])
        outcome = ProportionalShareMechanism(1.0).run_round(auction_round)
        assert 0 in outcome.selected


class TestMyopicVCG:
    def test_truthful_and_ir(self, rng):
        auction_round, costs = random_instance(rng, 6)
        report = verify_truthfulness(
            lambda: MyopicVCGMechanism(max_winners=3), auction_round, costs
        )
        assert report.is_truthful
        outcome = MyopicVCGMechanism(max_winners=3).run_round(auction_round)
        assert verify_individual_rationality(outcome, auction_round) == []

    def test_no_budget_control(self, rng):
        """Spend grows linearly with rounds — nothing reins it in."""
        mechanism = MyopicVCGMechanism(max_winners=5)
        total = 0.0
        for t in range(50):
            auction_round, _ = random_instance(rng, 8)
            auction_round = make_round(
                list(auction_round.bids[i].cost for i in range(8)),
                [3.0] * 8,
                index=t,
            )
            total += mechanism.run_round(auction_round).total_payment
        assert total > 50  # far above any per-round budget ~1

    def test_stateless_reset_noop(self):
        mechanism = MyopicVCGMechanism()
        mechanism.reset()  # must not raise


class TestAllAvailable:
    def test_selects_everyone(self, simple_round):
        outcome = AllAvailableMechanism().run_round(simple_round)
        assert outcome.selected == tuple(sorted(simple_round.client_ids))

    def test_pays_bids(self, simple_round):
        outcome = AllAvailableMechanism().run_round(simple_round)
        total_bids = sum(b.cost for b in simple_round.bids)
        assert outcome.total_payment == pytest.approx(total_bids)
