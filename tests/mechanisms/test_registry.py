"""Registry coverage: every registered name builds and runs.

The registry is the single source of truth for the CLI and the orchestration
subsystem; a factory that crashes (or builds a mechanism violating the
RoundOutcome contract) would surface only deep inside a campaign.  Construct
every registered mechanism from a representative config and drive it through
one tiny round, scalar and batched.
"""

import pytest

from repro.config import ExperimentConfig
from repro.core.bids import RoundBatch
from repro.mechanisms.registry import build_mechanism, mechanism_names
from tests.conftest import make_round


def config_for(name: str) -> ExperimentConfig:
    return ExperimentConfig(
        num_clients=6,
        num_rounds=5,
        max_winners=3,
        budget_per_round=2.0,
        v=15.0,
        seed=1,
        extras={"mechanism": name},
    )


@pytest.mark.parametrize("name", mechanism_names())
def test_factory_constructs_and_runs_one_round(name):
    mechanism = build_mechanism(config_for(name))
    auction_round = make_round(
        costs=[0.4, 0.9, 0.6, 1.4, 0.2, 0.8],
        values=[1.0, 2.0, 0.8, 2.5, 0.3, 1.1],
    )
    outcome = mechanism.run_round(auction_round)
    assert outcome.round_index == auction_round.index
    assert set(outcome.selected) <= set(auction_round.client_ids)
    assert set(outcome.payments) == set(outcome.selected)
    assert all(payment >= 0 for payment in outcome.payments.values())


@pytest.mark.parametrize("name", mechanism_names())
def test_batch_api_matches_contract(name):
    mechanism = build_mechanism(config_for(name))
    rounds = [
        make_round([0.4, 0.9, 0.6], [1.0, 2.0, 0.8], index=0),
        make_round([0.5, 0.3], [1.5, 0.9], index=1),
    ]
    outcomes = mechanism.run_rounds(RoundBatch.from_rounds(rounds))
    assert [outcome.round_index for outcome in outcomes] == [0, 1]
    for auction_round, outcome in zip(rounds, outcomes):
        assert set(outcome.selected) <= set(auction_round.client_ids)
        assert set(outcome.payments) == set(outcome.selected)


def test_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown mechanism"):
        build_mechanism(config_for("no-such-mechanism"))
