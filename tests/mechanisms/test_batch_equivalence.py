"""Batched mechanism API: run_rounds / probe_rounds equal the scalar path.

The acceptance contract of the batched round pipeline: for every stateless
mechanism, feeding a :class:`~repro.core.bids.RoundBatch` through
``run_rounds`` produces :class:`RoundOutcome`s *identical* (winners,
payments, diagnostics — exact float equality, no tolerance) to driving a
fresh instance round by round; for LT-VCG, ``probe_rounds`` from a fresh
mechanism equals running every round on its own fresh mechanism.  Random
batches mix round sizes so the padded columnar layout is exercised.
"""

import numpy as np
import pytest

from repro.core.bids import AuctionRound, RoundBatch
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.winner_determination import SolveCache
from repro.mechanisms import (
    AllAvailableMechanism,
    FixedPriceMechanism,
    GreedyFirstPriceMechanism,
    MyopicVCGMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)
from tests.conftest import random_instance

KNAPSACK_DEMANDS = {i: 0.5 + (i % 4) * 0.5 for i in range(200)}

STATELESS_FACTORIES = {
    "fixed-price": lambda: FixedPriceMechanism(price=0.9, max_winners=4),
    "fixed-price-nocap": lambda: FixedPriceMechanism(price=1.2),
    "greedy-first-price": lambda: GreedyFirstPriceMechanism(2.0, 4),
    "prop-share": lambda: ProportionalShareMechanism(2.0, 4),
    "prop-share-nocap": lambda: ProportionalShareMechanism(3.0),
    "all-available": lambda: AllAvailableMechanism(),
    "myopic-vcg": lambda: MyopicVCGMechanism(max_winners=4),
    "myopic-vcg-greedy": lambda: MyopicVCGMechanism(max_winners=4, wd_method="greedy"),
    "myopic-vcg-knap": lambda: MyopicVCGMechanism(
        max_winners=4, demands=KNAPSACK_DEMANDS, capacity=3.0
    ),
    "myopic-vcg-knap-greedy": lambda: MyopicVCGMechanism(
        max_winners=4, wd_method="greedy", demands=KNAPSACK_DEMANDS, capacity=3.0
    ),
}


def random_batch(rng, num_rounds=12, max_size=10):
    rounds = []
    for t in range(num_rounds):
        auction_round, _ = random_instance(rng, int(rng.integers(1, max_size)))
        rounds.append(
            AuctionRound(index=t, bids=auction_round.bids, values=auction_round.values)
        )
    return rounds, RoundBatch.from_rounds(rounds)


def assert_outcomes_identical(sequential, batched, context):
    assert len(sequential) == len(batched)
    for expected, actual in zip(sequential, batched):
        assert expected.round_index == actual.round_index, context
        assert expected.selected == actual.selected, (context, expected.round_index)
        assert dict(expected.payments) == dict(actual.payments), (
            context,
            expected.round_index,
        )
        assert dict(expected.diagnostics) == dict(actual.diagnostics), (
            context,
            expected.round_index,
        )


@pytest.mark.parametrize("name", sorted(STATELESS_FACTORIES))
class TestStatelessBatchEqualsSequential:
    def test_run_rounds_identical_over_random_batches(self, name):
        factory = STATELESS_FACTORIES[name]
        assert factory().stateless
        rng = np.random.default_rng(sorted(STATELESS_FACTORIES).index(name))
        for trial in range(8):
            rounds, batch = random_batch(rng)
            sequential = [factory().run_round(r) for r in rounds]
            assert_outcomes_identical(
                sequential, factory().run_rounds(batch), (name, trial)
            )

    def test_probe_rounds_delegates_to_batch(self, name):
        factory = STATELESS_FACTORIES[name]
        rng = np.random.default_rng(100 + sorted(STATELESS_FACTORIES).index(name))
        rounds, batch = random_batch(rng, num_rounds=5)
        mechanism = factory()
        assert_outcomes_identical(
            mechanism.run_rounds(batch), mechanism.probe_rounds(batch), name
        )


class TestRandomMechanismBatch:
    def test_run_rounds_consumes_rng_like_sequential(self):
        # Not stateless (generator state advances), but the batch override
        # draws in round order, so same-seeded instances agree exactly.
        rng = np.random.default_rng(5)
        rounds, batch = random_batch(rng, num_rounds=10)
        a = RandomSelectionMechanism(3, np.random.default_rng(9))
        b = RandomSelectionMechanism(3, np.random.default_rng(9))
        assert_outcomes_identical(
            [a.run_round(r) for r in rounds], b.run_rounds(batch), "random"
        )


LT_VCG_CONFIGS = {
    "exact": LongTermVCGConfig(v=20.0, budget_per_round=3.0, max_winners=5),
    "greedy": LongTermVCGConfig(
        v=20.0, budget_per_round=3.0, max_winners=5, wd_method="greedy"
    ),
    "participation": LongTermVCGConfig(
        v=20.0,
        budget_per_round=3.0,
        max_winners=5,
        participation_targets={i: 0.3 for i in range(10)},
    ),
    "reserve": LongTermVCGConfig(
        v=20.0, budget_per_round=3.0, max_winners=5, reserve_price=1.0
    ),
    "knapsack": LongTermVCGConfig(
        v=20.0,
        budget_per_round=3.0,
        max_winners=5,
        demands=KNAPSACK_DEMANDS,
        capacity=3.0,
    ),
}


@pytest.mark.parametrize("variant", sorted(LT_VCG_CONFIGS))
class TestLtVcgProbeRounds:
    def test_probe_equals_fresh_run_round(self, variant):
        config = LT_VCG_CONFIGS[variant]
        factory = lambda: LongTermVCGMechanism(config)  # noqa: E731
        rng = np.random.default_rng(31)
        for trial in range(4):
            rounds, batch = random_batch(rng, num_rounds=8)
            sequential = [factory().run_round(r) for r in rounds]
            assert_outcomes_identical(
                sequential, factory().probe_rounds(batch), (variant, trial)
            )

    def test_probe_does_not_mutate_state(self, variant):
        mechanism = LongTermVCGMechanism(LT_VCG_CONFIGS[variant])
        rng = np.random.default_rng(32)
        _, batch = random_batch(rng, num_rounds=4)
        backlog_before = mechanism.budget_backlog
        mechanism.probe_rounds(batch)
        assert mechanism.budget_backlog == backlog_before


class TestSolveCacheContract:
    def test_reset_drops_attached_cache(self):
        for mechanism in (
            LongTermVCGMechanism(LongTermVCGConfig(v=10.0, budget_per_round=1.0)),
            MyopicVCGMechanism(max_winners=3),
        ):
            shared = SolveCache()
            mechanism.attach_solve_cache(shared)
            assert mechanism.solve_cache is shared
            rng = np.random.default_rng(7)
            auction_round, _ = random_instance(rng, 5)
            mechanism.run_round(auction_round)
            mechanism.reset()
            # Dropped, not cleared: the shared cache keeps its entries for
            # other holders, while the mechanism starts from a fresh one.
            assert mechanism.solve_cache is not shared
            assert len(mechanism.solve_cache) == 0

    def test_probes_share_one_cache_across_deviations(self):
        from repro.core.properties import verify_truthfulness

        built = []

        def factory():
            mechanism = LongTermVCGMechanism(
                LongTermVCGConfig(
                    v=20.0,
                    budget_per_round=3.0,
                    max_winners=3,
                    demands=KNAPSACK_DEMANDS,
                    capacity=3.0,
                )
            )
            built.append(mechanism)
            return mechanism

        rng = np.random.default_rng(13)
        auction_round, true_costs = random_instance(rng, 6)
        report = verify_truthfulness(factory, auction_round, true_costs)
        assert report.is_truthful
        assert len(built) >= 2
        caches = {id(mechanism.solve_cache) for mechanism in built}
        assert len(caches) == 1, "probe mechanisms must share one solve cache"
        assert built[0].solve_cache.hits > 0

    def test_deepcopy_probe_fallback_shares_cache(self):
        from repro.core.mechanism import Mechanism

        class FallbackLtVcg(LongTermVCGMechanism):
            """LT-VCG forced onto the generic deep-copy probe fallback."""

            probe_rounds = Mechanism.probe_rounds

        config = LongTermVCGConfig(
            v=20.0,
            budget_per_round=3.0,
            max_winners=3,
            demands=KNAPSACK_DEMANDS,
            capacity=3.0,
        )
        rng = np.random.default_rng(17)
        rounds, batch = random_batch(rng, num_rounds=6)
        mechanism = FallbackLtVcg(config)
        shared = SolveCache()
        mechanism.attach_solve_cache(shared)
        outcomes = mechanism.probe_rounds(batch)
        # The deep copies share (not copy) the attached cache...
        assert len(shared) > 0
        # ...and the fallback still matches fresh-mechanism runs exactly.
        assert_outcomes_identical(
            [LongTermVCGMechanism(config).run_round(r) for r in rounds],
            outcomes,
            "deepcopy-fallback",
        )
