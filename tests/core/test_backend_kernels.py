"""Backend x kernel equivalence suite: every backend is pinned to numpy.

Each registered, available backend must reproduce the numpy oracle
bit-exact on the integer/float64 kernels (knapsack DP fills, stacked
optimizer steps, FedAvg combine) and to documented tolerance where
float32 storage applies.  The suite parametrises over
:func:`repro.kernels.available_backends`, so the numba leg runs exactly
when numba is importable (the CI optional-dependency job) and is skipped
silently otherwise.
"""

import numpy as np
import pytest

from repro import kernels
from repro.core import winner_determination as wd
from repro.core.winner_determination import (
    WinnerDeterminationProblem,
    knapsack_objectives_without,
    solve_knapsack_dp,
    solve_knapsack_dp_rows,
)
from repro.fl.aggregation import stack_updates, weighted_mean
from repro.fl.batch import SequentialLocalSolver, VectorizedLocalSolver
from repro.fl.client import FLClient
from repro.fl.cnn import TinyConvNet, stacked_convnet_kernel
from repro.fl.datasets import Dataset
from repro.fl.optimizer import SGD, Adam, StackedAdam, StackedSGD

BACKENDS = kernels.available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Pin one backend for the test; fresh prune memo per leg so every
    backend actually runs its own DP fills."""
    if hasattr(wd._LOCAL, "prune_memo"):
        wd._LOCAL.prune_memo.clear()
    with kernels.use_backend(request.param):
        yield request.param


def _random_problem(rng, kind):
    n = int(rng.integers(4, 90))
    if kind == 0:  # ties-heavy: few distinct scores and demands
        scores = rng.choice([1.0, 2.0, 3.0], n)
        demands = rng.choice([0.5, 1.0, 1.5], n)
    elif kind == 1:  # equal-density adversarial
        demands = np.round(rng.uniform(0.2, 2.0, n), 2)
        scores = demands * 2.0
    else:  # generic adversarial mix
        scores = np.round(rng.uniform(0.01, 5.0, n), 3)
        demands = np.round(rng.uniform(0.05, 2.5, n), 3)
    capacity = float(rng.uniform(1.0, 6.0))
    max_winners = int(rng.integers(1, 12)) if rng.random() < 0.8 else None
    return WinnerDeterminationProblem(
        tuple(scores), tuple(demands), capacity, max_winners
    )


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in BACKENDS

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            with kernels.use_backend("no-such-backend"):
                pass  # pragma: no cover - entry raises

    def test_unavailable_backend_raises(self):
        if "numba" in BACKENDS:
            pytest.skip("numba is installed — no unavailable backend to probe")
        with pytest.raises(RuntimeError, match="unavailable"):
            with kernels.use_backend("numba"):
                pass  # pragma: no cover - entry raises

    def test_partial_backend_falls_back_per_kernel(self, backend):
        # Every seam entry resolves to *some* callable on every backend.
        for name in kernels.KERNEL_NAMES:
            assert callable(kernels.kernel(name))

    def test_auto_resolves(self):
        with kernels.use_backend("auto"):
            assert kernels.active_backend().name in BACKENDS


class TestKnapsackKernels:
    def test_pruned_solve_matches_unpruned_oracle(self, backend):
        rng = np.random.default_rng(17)
        for trial in range(60):
            problem = _random_problem(rng, trial % 3)
            oracle = solve_knapsack_dp(problem, prune=False)
            pruned = solve_knapsack_dp(problem, prune=True)
            assert abs(oracle.objective - pruned.objective) <= 1e-9
            # Feasibility of the pruned selection.
            demands = problem.demands_array
            assert demands[list(pruned.selected)].sum() <= problem.capacity + 1e-9
            if problem.max_winners is not None:
                assert len(pruned.selected) <= problem.max_winners

    def test_batched_rows_bitwise_equal_scalar(self, backend):
        rng = np.random.default_rng(23)
        problems = [_random_problem(rng, trial % 3) for trial in range(40)]
        stacked = solve_knapsack_dp_rows(problems)
        for problem, got in zip(problems, stacked):
            want = solve_knapsack_dp(problem)
            assert got.selected == want.selected
            assert got.objective == want.objective

    def test_objectives_without_exact_under_prune(self, backend):
        rng = np.random.default_rng(29)
        for trial in range(25):
            problem = _random_problem(rng, trial % 3)
            winners = solve_knapsack_dp(problem).selected
            if not winners:
                continue
            queried = winners[: min(3, len(winners))]
            got = knapsack_objectives_without(problem, queried, prune=True)
            want = knapsack_objectives_without(problem, queried, prune=False)
            for i in queried:
                assert abs(got[i] - want[i]) <= 1e-9


def _cnn_clients(num_clients, optimizer_factory):
    rng = np.random.default_rng(3)
    clients = []
    for i in range(num_clients):
        shard = int(rng.integers(8, 24))
        dataset = Dataset(
            features=rng.normal(size=(shard, 64)),
            labels=rng.integers(0, 10, shard),
            num_classes=10,
        )
        clients.append(
            FLClient(
                i,
                dataset,
                TinyConvNet((8, 8), 10, num_filters=4, l2=0.001 * (i % 3), seed=7),
                optimizer_factory,
                local_steps=3,
                batch_size=min(6, shard),
                rng=np.random.default_rng(200 + i),
            )
        )
    return clients


class TestStackedConv:
    def test_kernel_matches_scalar_model(self, backend):
        rng = np.random.default_rng(5)
        models = [
            TinyConvNet((8, 8), 10, num_filters=4, l2=0.01 * c, seed=c)
            for c in range(3)
        ]
        kernel = stacked_convnet_kernel(models)
        assert kernel is not None
        params = np.stack([model.get_params() for model in models])
        batch = 7
        features = rng.normal(size=(3, batch, 64))
        labels = rng.integers(0, 10, size=(3, batch))
        counts = np.full(3, float(batch))
        losses, grads = kernel.loss_and_grad(
            params, features, labels, None, counts, with_loss=True
        )
        for c, model in enumerate(models):
            want_loss, want_grad = model.loss_and_grad(features[c], labels[c])
            assert abs(losses[c] - want_loss) <= 1e-9
            np.testing.assert_allclose(grads[c], want_grad, rtol=1e-9, atol=1e-12)

    def test_cnn_federation_stacked_vs_sequential(self, backend):
        global_params = TinyConvNet((8, 8), 10, num_filters=4, seed=7).get_params()
        reference = SequentialLocalSolver().train(
            _cnn_clients(5, lambda: SGD(0.05, 0.9)), global_params
        )
        stacked = VectorizedLocalSolver().train(
            _cnn_clients(5, lambda: SGD(0.05, 0.9)), global_params
        )
        np.testing.assert_allclose(
            reference.deltas, stacked.deltas, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(
            reference.final_losses, stacked.final_losses, rtol=1e-9, atol=1e-12
        )

    def test_chunked_pipeline_bitwise_equal(self, backend):
        global_params = TinyConvNet((8, 8), 10, num_filters=4, seed=7).get_params()
        whole = VectorizedLocalSolver().train(
            _cnn_clients(6, lambda: SGD(0.1)), global_params
        )
        chunked = VectorizedLocalSolver(chunk_clients=2).train(
            _cnn_clients(6, lambda: SGD(0.1)), global_params
        )
        assert np.array_equal(whole.deltas, chunked.deltas)
        assert np.array_equal(whole.final_losses, chunked.final_losses)

    def test_float32_storage_within_tolerance(self, backend):
        global_params = TinyConvNet((8, 8), 10, num_filters=4, seed=7).get_params()
        exact = VectorizedLocalSolver().train(
            _cnn_clients(5, lambda: SGD(0.1)), global_params
        )
        lean = VectorizedLocalSolver(storage_dtype=np.float32).train(
            _cnn_clients(5, lambda: SGD(0.1)), global_params
        )
        scale = max(float(np.abs(exact.deltas).max()), 1e-12)
        assert float(np.abs(exact.deltas - lean.deltas).max()) / scale < 1e-5


class TestStackedOptimizers:
    def test_sgd_bit_identical_to_scalar(self, backend):
        rng = np.random.default_rng(11)
        for momentum in (0.0, 0.9):
            scalars = [SGD(0.1 + 0.01 * c, momentum) for c in range(4)]
            stacked = StackedSGD(
                np.array([opt.learning_rate for opt in scalars]),
                np.array([opt.momentum for opt in scalars]),
            )
            params = rng.normal(size=(4, 30))
            rows = params.copy()
            for _ in range(5):
                grads = rng.normal(size=(4, 30))
                params = stacked.step(params, grads)
                rows = np.stack(
                    [opt.step(rows[c], grads[c]) for c, opt in enumerate(scalars)]
                )
            assert np.array_equal(params, rows)

    def test_adam_bit_identical_to_scalar(self, backend):
        rng = np.random.default_rng(13)
        scalars = [Adam(0.01 + 0.001 * c) for c in range(4)]
        stacked = StackedAdam(
            np.array([opt.learning_rate for opt in scalars]),
            np.array([opt.beta1 for opt in scalars]),
            np.array([opt.beta2 for opt in scalars]),
            np.array([opt.epsilon for opt in scalars]),
        )
        params = rng.normal(size=(4, 30))
        rows = params.copy()
        for _ in range(5):
            grads = rng.normal(size=(4, 30))
            params = stacked.step(params, grads)
            rows = np.stack(
                [opt.step(rows[c], grads[c]) for c, opt in enumerate(scalars)]
            )
        assert np.array_equal(params, rows)


class TestFedAvgCombine:
    def test_weighted_mean_matches_manual_tensordot(self, backend):
        rng = np.random.default_rng(19)
        stacked = stack_updates(rng.normal(size=(6, 40)))
        weights = rng.uniform(0.5, 2.0, 6)
        got = weighted_mean(stacked, weights)
        want = (weights / weights.sum()) @ stacked
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-15)


@pytest.mark.skipif(len(BACKENDS) < 2, reason="single backend available")
class TestCrossBackendBitIdentity:
    """With numba present, its DP fills must equal numpy's bitwise."""

    def test_dp_fill_tables_identical(self):
        rng = np.random.default_rng(31)
        scores = rng.uniform(0.1, 5.0, 25)
        weights = rng.integers(30, 400, 25).astype(np.int64)
        int_capacity, k_cap = 1000, 6
        results = {}
        for name in BACKENDS:
            with kernels.use_backend(name):
                dp = np.zeros((int_capacity + 1, k_cap + 1))
                cells = dp.size
                take = np.zeros((25, (cells + 7) // 8), dtype=np.uint8)
                kernels.kernel("knapsack_dp_fill")(
                    scores, weights, int_capacity, k_cap, dp, take
                )
                results[name] = (dp, take)
        reference_dp, reference_take = results["numpy"]
        for name, (dp, take) in results.items():
            assert np.array_equal(dp, reference_dp), name
            assert np.array_equal(take, reference_take), name

    def test_batch_fill_identical(self):
        rng = np.random.default_rng(37)
        scores = rng.uniform(0.1, 5.0, size=(4, 20))
        weights = rng.integers(30, 400, size=(4, 20)).astype(np.int64)
        results = {}
        for name in BACKENDS:
            with kernels.use_backend(name):
                results[name] = kernels.kernel("knapsack_dp_fill_batch")(
                    scores, weights, 1000, 5
                )
        reference = results["numpy"]
        for name, (dp, take) in results.items():
            assert np.array_equal(dp, reference[0]), name
            assert np.array_equal(take, reference[1]), name
