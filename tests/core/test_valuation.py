"""Tests for repro.core.valuation."""

import math

import pytest

from repro.core.bids import Bid
from repro.core.valuation import (
    DiminishingReturnsValuation,
    LinearValuation,
    StalenessAwareValuation,
)


def bid(client_id=0, cost=1.0, data_size=100, quality=1.0) -> Bid:
    return Bid(client_id=client_id, cost=cost, data_size=data_size, quality=quality)


class TestLinearValuation:
    def test_reference_size_normalisation(self):
        model = LinearValuation(scale=2.0, reference_size=100)
        assert model.value_of(bid(data_size=100)) == pytest.approx(2.0)
        assert model.value_of(bid(data_size=50)) == pytest.approx(1.0)

    def test_quality_scales(self):
        model = LinearValuation()
        assert model.value_of(bid(quality=0.5)) == pytest.approx(
            0.5 * model.value_of(bid(quality=1.0))
        )

    def test_independent_of_cost(self):
        model = LinearValuation()
        assert model.value_of(bid(cost=0.1)) == model.value_of(bid(cost=99.0))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LinearValuation(scale=0.0)
        with pytest.raises(ValueError):
            LinearValuation(reference_size=0)


class TestDiminishingReturnsValuation:
    def test_logarithmic_shape(self):
        model = DiminishingReturnsValuation(scale=1.0, reference_size=100)
        v100 = model.value_of(bid(data_size=100))
        v200 = model.value_of(bid(data_size=200))
        v300 = model.value_of(bid(data_size=300))
        assert v200 - v100 > v300 - v200  # concave in equal additive steps

    def test_matches_log1p(self):
        model = DiminishingReturnsValuation(scale=3.0, reference_size=50)
        assert model.value_of(bid(data_size=150, quality=0.5)) == pytest.approx(
            3.0 * math.log1p(3.0) * 0.5
        )

    def test_zero_data_zero_value(self):
        model = DiminishingReturnsValuation()
        assert model.value_of(bid(data_size=0)) == 0.0


class TestStalenessAwareValuation:
    def test_never_selected_gets_full_boost(self):
        model = StalenessAwareValuation(LinearValuation(), boost=0.5, cap=10)
        model.register_clients((0,))
        assert model.value_of(bid(client_id=0)) == pytest.approx(1.5)

    def test_selection_resets_staleness(self):
        model = StalenessAwareValuation(LinearValuation(), boost=0.5, cap=10)
        model.register_clients((0,))
        model.observe_selection((0,))
        assert model.staleness_of(0) == 0.0
        assert model.value_of(bid(client_id=0)) == pytest.approx(1.0)

    def test_staleness_accumulates_and_saturates(self):
        model = StalenessAwareValuation(LinearValuation(), boost=1.0, cap=3)
        model.register_clients((0,))
        model.observe_selection((0,))
        for _ in range(2):
            model.observe_selection(())
        assert model.staleness_of(0) == pytest.approx(2 / 3)
        for _ in range(10):
            model.observe_selection(())
        assert model.staleness_of(0) == 1.0

    def test_boost_is_bid_independent(self):
        model = StalenessAwareValuation(LinearValuation(), boost=0.7)
        model.register_clients((0,))
        assert model.value_of(bid(client_id=0, cost=0.01)) == model.value_of(
            bid(client_id=0, cost=100.0)
        )

    def test_values_for_whole_round(self):
        model = LinearValuation()
        bids = (bid(client_id=0, data_size=100), bid(client_id=1, data_size=200))
        values = model.values_for(bids)
        assert set(values) == {0, 1}
        assert values[1] == pytest.approx(2 * values[0])
