"""Tests for repro.core.winner_determination."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.winner_determination import (
    WinnerDeterminationProblem,
    solve,
    solve_brute_force,
    solve_greedy,
    solve_knapsack_dp,
    solve_lp_bound,
    solve_top_k,
)


def problem(scores, demands=None, capacity=None, max_winners=None):
    return WinnerDeterminationProblem(
        scores=tuple(scores),
        demands=None if demands is None else tuple(demands),
        capacity=capacity,
        max_winners=max_winners,
    )


class TestProblemValidation:
    def test_demands_capacity_must_pair(self):
        with pytest.raises(ValueError):
            problem([1.0], demands=[1.0])
        with pytest.raises(ValueError):
            problem([1.0], capacity=1.0)

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ValueError):
            problem([1.0], demands=[0.0], capacity=1.0)

    def test_rejects_nonfinite_scores(self):
        with pytest.raises(ValueError):
            problem([float("inf")])

    def test_without_removes_candidate(self):
        p = problem([1.0, 2.0, 3.0], max_winners=2)
        sub = p.without(1)
        assert sub.scores == (1.0, 3.0)
        assert sub.max_winners == 2

    def test_is_feasible(self):
        p = problem([1, 2, 3], demands=[1, 1, 1], capacity=2.0, max_winners=2)
        assert p.is_feasible((0, 1))
        assert not p.is_feasible((0, 1, 2))  # cap and capacity
        assert not p.is_feasible((0, 0))  # duplicates


class TestTopK:
    def test_selects_best_positive(self):
        allocation = solve_top_k(problem([3.0, -1.0, 2.0, 0.0], max_winners=2))
        assert allocation.selected == (0, 2)
        assert allocation.objective == pytest.approx(5.0)

    def test_zero_scores_excluded(self):
        allocation = solve_top_k(problem([0.0, 0.0]))
        assert allocation.selected == ()

    def test_unlimited_winners(self):
        allocation = solve_top_k(problem([1.0, 2.0, 3.0]))
        assert allocation.selected == (0, 1, 2)

    def test_rejects_knapsack(self):
        with pytest.raises(ValueError):
            solve_top_k(problem([1.0], demands=[1.0], capacity=1.0))

    def test_deterministic_tie_break(self):
        allocation = solve_top_k(problem([1.0, 1.0, 1.0], max_winners=2))
        assert allocation.selected == (0, 1)


class TestBruteForce:
    def test_knapsack_exact(self):
        # classic: greedy-by-density fails, optimum is {1, 2}
        p = problem([6.0, 5.0, 5.0], demands=[5.0, 4.0, 4.0], capacity=8.0)
        allocation = solve_brute_force(p)
        assert allocation.selected == (1, 2)
        assert allocation.objective == pytest.approx(10.0)

    def test_respects_cardinality(self):
        p = problem([5.0, 4.0, 3.0], max_winners=1)
        assert solve_brute_force(p).selected == (0,)

    def test_empty_when_all_negative(self):
        assert solve_brute_force(problem([-1.0, -2.0])).selected == ()

    def test_size_limit(self):
        with pytest.raises(ValueError, match="brute force"):
            solve_brute_force(problem([1.0] * 30))


class TestKnapsackDP:
    def test_matches_brute_force_integers(self):
        p = problem(
            [6.0, 5.0, 5.0, 2.0],
            demands=[5.0, 4.0, 4.0, 1.0],
            capacity=8.0,
        )
        dp = solve_knapsack_dp(p, resolution=8)
        bf = solve_brute_force(p)
        assert dp.objective == pytest.approx(bf.objective)

    def test_solution_always_feasible(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(3, 12))
            p = problem(
                rng.uniform(-1, 3, n).tolist(),
                demands=rng.uniform(0.1, 2.0, n).tolist(),
                capacity=float(rng.uniform(1.0, 4.0)),
                max_winners=int(rng.integers(1, n + 1)),
            )
            allocation = solve_knapsack_dp(p, resolution=500)
            assert p.is_feasible(allocation.selected)

    def test_falls_back_to_top_k_without_capacity(self):
        p = problem([3.0, 1.0], max_winners=1)
        assert solve_knapsack_dp(p).selected == (0,)

    def test_high_resolution_matches_brute_force(self):
        rng = np.random.default_rng(1)
        for _ in range(15):
            n = int(rng.integers(3, 10))
            p = problem(
                rng.uniform(0.1, 3, n).tolist(),
                demands=rng.uniform(0.2, 1.5, n).tolist(),
                capacity=float(rng.uniform(1.0, 3.0)),
            )
            dp = solve_knapsack_dp(p, resolution=4000)
            bf = solve_brute_force(p)
            # Quantisation rounds demands up, so DP is feasible but can be
            # slightly conservative; allow a tiny gap.
            assert dp.objective <= bf.objective + 1e-9
            assert dp.objective >= bf.objective - 0.15 * abs(bf.objective) - 1e-9


class TestGreedy:
    def test_feasible_and_positive_only(self):
        p = problem(
            [3.0, -1.0, 2.0],
            demands=[1.0, 1.0, 1.0],
            capacity=2.0,
        )
        allocation = solve_greedy(p)
        assert 1 not in allocation.selected
        assert p.is_feasible(allocation.selected)

    def test_skip_semantics(self):
        # Big item first by density, then the small one still fits.
        p = problem([10.0, 3.0, 2.9], demands=[6.0, 5.0, 2.0], capacity=8.0)
        allocation = solve_greedy(p)
        assert allocation.selected == (0, 2)

    def test_cardinality_cap(self):
        p = problem([3.0, 2.0, 1.0], max_winners=2)
        assert solve_greedy(p).selected == (0, 1)

    def test_never_beats_exact(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            n = int(rng.integers(2, 12))
            p = problem(
                rng.uniform(-1, 3, n).tolist(),
                demands=rng.uniform(0.1, 2.0, n).tolist(),
                capacity=float(rng.uniform(0.5, 4.0)),
            )
            assert solve_greedy(p).objective <= solve_brute_force(p).objective + 1e-9


class TestLPBound:
    def test_upper_bounds_exact(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = int(rng.integers(2, 12))
            p = problem(
                rng.uniform(-1, 3, n).tolist(),
                demands=rng.uniform(0.1, 2.0, n).tolist(),
                capacity=float(rng.uniform(0.5, 4.0)),
                max_winners=int(rng.integers(1, n + 1)),
            )
            assert solve_lp_bound(p) >= solve_brute_force(p).objective - 1e-7

    def test_no_constraints_sums_positive(self):
        assert solve_lp_bound(problem([1.0, -2.0, 3.0])) == pytest.approx(4.0)


class TestDispatch:
    def test_exact_picks_top_k_without_capacity(self):
        allocation = solve(problem([2.0, 1.0], max_winners=1), "exact")
        assert allocation.selected == (0,)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve(problem([1.0]), "magic")


@settings(max_examples=60, deadline=None)
@given(
    scores=st.lists(st.floats(-2, 5), min_size=1, max_size=10),
    seed=st.integers(0, 1000),
)
def test_exact_dominates_greedy_property(scores, seed):
    """Exact winner determination is never worse than greedy (hypothesis)."""
    rng = np.random.default_rng(seed)
    demands = rng.uniform(0.1, 2.0, len(scores)).tolist()
    p = problem(scores, demands=demands, capacity=float(rng.uniform(0.5, 4.0)))
    exact = solve_brute_force(p)
    greedy = solve_greedy(p)
    assert p.is_feasible(exact.selected)
    assert p.is_feasible(greedy.selected)
    assert exact.objective >= greedy.objective - 1e-9
