"""Tests for repro.core.bids."""

import pytest

from repro.core.bids import AuctionRound, Bid, RoundOutcome
from tests.conftest import make_round


class TestBid:
    def test_construction(self):
        bid = Bid(client_id=3, cost=1.5, data_size=200, quality=0.8)
        assert bid.client_id == 3
        assert bid.cost == 1.5

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            Bid(client_id=0, cost=-0.1)

    def test_rejects_negative_client_id(self):
        with pytest.raises(ValueError):
            Bid(client_id=-1, cost=1.0)

    def test_rejects_negative_data_size(self):
        with pytest.raises(ValueError):
            Bid(client_id=0, cost=1.0, data_size=-5)

    def test_with_cost_preserves_other_fields(self):
        bid = Bid(client_id=1, cost=1.0, data_size=50, quality=0.5)
        deviated = bid.with_cost(2.0)
        assert deviated.cost == 2.0
        assert deviated.data_size == 50
        assert deviated.quality == 0.5
        assert bid.cost == 1.0  # frozen original

    def test_frozen(self):
        bid = Bid(client_id=0, cost=1.0)
        with pytest.raises(AttributeError):
            bid.cost = 2.0


class TestAuctionRound:
    def test_rejects_duplicate_clients(self):
        bids = (Bid(client_id=0, cost=1.0), Bid(client_id=0, cost=2.0))
        with pytest.raises(ValueError, match="duplicate"):
            AuctionRound(index=0, bids=bids, values={0: 1.0})

    def test_rejects_missing_values(self):
        bids = (Bid(client_id=0, cost=1.0), Bid(client_id=1, cost=2.0))
        with pytest.raises(ValueError, match="values missing"):
            AuctionRound(index=0, bids=bids, values={0: 1.0})

    def test_bid_of(self):
        auction_round = make_round([0.5, 0.7])
        assert auction_round.bid_of(1).cost == 0.7
        with pytest.raises(KeyError):
            auction_round.bid_of(99)

    def test_with_replaced_bid(self):
        auction_round = make_round([0.5, 0.7])
        new = auction_round.with_replaced_bid(
            auction_round.bid_of(0).with_cost(9.0)
        )
        assert new.bid_of(0).cost == 9.0
        assert new.bid_of(1).cost == 0.7
        assert auction_round.bid_of(0).cost == 0.5

    def test_with_replaced_bid_unknown_client(self):
        auction_round = make_round([0.5])
        with pytest.raises(KeyError):
            auction_round.with_replaced_bid(Bid(client_id=7, cost=1.0))

    def test_without_client(self):
        auction_round = make_round([0.5, 0.7, 0.9])
        reduced = auction_round.without_client(1)
        assert reduced.client_ids == (0, 2)
        assert 1 not in reduced.values


class TestRoundOutcome:
    def test_valid(self):
        outcome = RoundOutcome(round_index=0, selected=(1, 3), payments={1: 0.5, 3: 0.2})
        assert outcome.total_payment == pytest.approx(0.7)
        assert outcome.payment_of(1) == 0.5
        assert outcome.payment_of(2) == 0.0

    def test_selected_must_be_sorted_unique(self):
        with pytest.raises(ValueError):
            RoundOutcome(round_index=0, selected=(3, 1), payments={1: 0.1, 3: 0.1})
        with pytest.raises(ValueError):
            RoundOutcome(round_index=0, selected=(1, 1), payments={1: 0.1})

    def test_payments_must_match_selection(self):
        with pytest.raises(ValueError, match="missing"):
            RoundOutcome(round_index=0, selected=(1,), payments={})
        with pytest.raises(ValueError, match="unselected"):
            RoundOutcome(round_index=0, selected=(), payments={1: 0.5})

    def test_rejects_negative_payment(self):
        with pytest.raises(ValueError, match="negative"):
            RoundOutcome(round_index=0, selected=(1,), payments={1: -0.5})
