"""Tests for repro.core.properties (the verification harness itself)."""

import numpy as np
import pytest

from repro.core.bids import AuctionRound, Bid, RoundOutcome
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.mechanism import Mechanism
from repro.core.properties import (
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)
from tests.conftest import make_round


class _PayAsBidTopK(Mechanism):
    """Intentionally manipulable mechanism: select lowest bids, pay bids."""

    name = "pay-as-bid"

    def __init__(self, k: int) -> None:
        self.k = k

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        ranked = sorted(auction_round.bids, key=lambda b: (b.cost, b.client_id))
        winners = ranked[: self.k]
        return RoundOutcome(
            round_index=auction_round.index,
            selected=tuple(sorted(b.client_id for b in winners)),
            payments={b.client_id: b.cost for b in winners},
        )


class _UnderpayingMechanism(Mechanism):
    """Intentionally IR-violating: select everyone, pay half the bid."""

    name = "underpay"

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        return RoundOutcome(
            round_index=auction_round.index,
            selected=tuple(sorted(auction_round.client_ids)),
            payments={b.client_id: b.cost / 2 for b in auction_round.bids},
        )


def lt_vcg_factory(**overrides):
    config = LongTermVCGConfig(
        v=overrides.pop("v", 10.0),
        budget_per_round=overrides.pop("budget_per_round", 1.0),
        max_winners=overrides.pop("max_winners", 3),
        **overrides,
    )
    return lambda: LongTermVCGMechanism(config)


class TestVerifyTruthfulness:
    def test_truthful_mechanism_passes(self, simple_round):
        costs = {b.client_id: b.cost for b in simple_round.bids}
        report = verify_truthfulness(lt_vcg_factory(), simple_round, costs)
        assert report.is_truthful
        assert report.max_gain <= report.tolerance

    def test_pay_as_bid_detected_as_manipulable(self, simple_round):
        costs = {b.client_id: b.cost for b in simple_round.bids}
        report = verify_truthfulness(
            lambda: _PayAsBidTopK(3), simple_round, costs
        )
        assert not report.is_truthful
        assert len(report.violations()) > 0
        # Pay-as-bid: winners gain by overbidding, never by underbidding.
        for record in report.violations():
            assert record.deviated_bid > record.true_cost

    def test_requires_truthful_baseline_profile(self, simple_round):
        costs = {b.client_id: b.cost * 2 for b in simple_round.bids}
        with pytest.raises(ValueError, match="true cost"):
            verify_truthfulness(lt_vcg_factory(), simple_round, costs)

    def test_requires_cost_for_every_bidder(self, simple_round):
        costs = {b.client_id: b.cost for b in simple_round.bids}
        del costs[0]
        with pytest.raises(ValueError, match="missing"):
            verify_truthfulness(lt_vcg_factory(), simple_round, costs)

    def test_report_records_all_deviations(self, simple_round):
        costs = {b.client_id: b.cost for b in simple_round.bids}
        factors = (0.5, 2.0)
        report = verify_truthfulness(
            lt_vcg_factory(), simple_round, costs, deviation_factors=factors
        )
        assert len(report.records) == len(simple_round.bids) * len(factors)


class TestVerifyIndividualRationality:
    def test_lt_vcg_is_ir(self, simple_round):
        outcome = lt_vcg_factory()().run_round(simple_round)
        assert verify_individual_rationality(outcome, simple_round) == []

    def test_underpaying_mechanism_flagged(self, simple_round):
        outcome = _UnderpayingMechanism().run_round(simple_round)
        violations = verify_individual_rationality(outcome, simple_round)
        assert len(violations) == len(outcome.selected)
        assert "payment" in violations[0]


class TestVerifyMonotonicity:
    def test_lt_vcg_monotone(self, simple_round):
        assert verify_monotonicity(lt_vcg_factory(), simple_round) == []

    def test_greedy_lt_vcg_monotone(self, simple_round):
        factory = lt_vcg_factory(wd_method="greedy")
        assert verify_monotonicity(factory, simple_round) == []

    def test_detects_non_monotone_rule(self):
        class Perverse(Mechanism):
            """Selects the single *highest* bid — lowering a bid loses."""

            name = "perverse"

            def run_round(self, auction_round):
                winner = max(auction_round.bids, key=lambda b: b.cost)
                return RoundOutcome(
                    round_index=auction_round.index,
                    selected=(winner.client_id,),
                    payments={winner.client_id: winner.cost},
                )

        auction_round = make_round([1.0, 0.5], [1.0, 1.0])
        violations = verify_monotonicity(lambda: Perverse(), auction_round)
        assert violations
