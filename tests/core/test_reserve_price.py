"""Tests for the reserve-price extension of the VCG auction."""

import pytest

from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.properties import (
    verify_individual_rationality,
    verify_truthfulness,
)
from repro.core.vcg import SingleRoundVCGAuction
from tests.conftest import make_round, random_instance


class TestReservePrice:
    def test_bids_above_reserve_rejected(self):
        auction = SingleRoundVCGAuction(reserve_price=1.0)
        auction_round = make_round([0.5, 1.5], [3.0, 3.0])
        result = auction.run(auction_round)
        assert result.selected == (0,)

    def test_payments_capped_at_reserve(self):
        # Without reserve, the lone winner's critical bid is its value 3.0.
        no_reserve = SingleRoundVCGAuction().run(make_round([0.5], [3.0]))
        assert no_reserve.payments[0] == pytest.approx(3.0)
        capped = SingleRoundVCGAuction(reserve_price=1.2).run(
            make_round([0.5], [3.0])
        )
        assert capped.payments[0] == pytest.approx(1.2)

    def test_empty_round_after_filtering(self):
        auction = SingleRoundVCGAuction(reserve_price=0.1)
        result = auction.run(make_round([0.5, 0.9], [3.0, 3.0]))
        assert result.selected == ()
        assert result.total_payment == 0.0

    def test_still_individually_rational(self, rng):
        for _ in range(20):
            auction_round, _ = random_instance(rng, 6)
            auction = SingleRoundVCGAuction(max_winners=3, reserve_price=1.0)
            result = auction.run(auction_round)
            for cid in result.selected:
                bid_cost = auction_round.bid_of(cid).cost
                assert bid_cost <= 1.0 + 1e-9
                assert bid_cost - 1e-9 <= result.payments[cid] <= 1.0 + 1e-9

    def test_still_truthful(self, rng):
        config = LongTermVCGConfig(
            v=15.0, budget_per_round=2.0, max_winners=3, reserve_price=1.2
        )
        for _ in range(10):
            auction_round, costs = random_instance(rng, 6, cost_range=(0.1, 2.0))
            report = verify_truthfulness(
                lambda: LongTermVCGMechanism(config), auction_round, costs
            )
            assert report.is_truthful, report.violations()

    def test_reserve_lowers_spend(self, rng):
        auction_round, _ = random_instance(rng, 8, cost_range=(0.1, 0.9))
        free = SingleRoundVCGAuction(max_winners=4).run(auction_round)
        capped = SingleRoundVCGAuction(max_winners=4, reserve_price=1.0).run(
            auction_round
        )
        assert capped.total_payment <= free.total_payment + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            SingleRoundVCGAuction(reserve_price=0.0)

    def test_ir_through_mechanism(self, rng):
        config = LongTermVCGConfig(
            v=15.0, budget_per_round=2.0, max_winners=3, reserve_price=1.5
        )
        for _ in range(10):
            auction_round, _ = random_instance(rng, 6)
            mechanism = LongTermVCGMechanism(config)
            outcome = mechanism.run_round(auction_round)
            assert verify_individual_rationality(outcome, auction_round) == []
