"""Property-based (hypothesis) verification of the headline economic claims.

These are the repository's strongest tests: on *arbitrary* random instances,

* LT-VCG with exact winner determination is dominant-strategy truthful,
* LT-VCG is individually rational and monotone (exact and greedy),
* the greedy allocation rule is monotone (the precondition for its
  critical-value payments),
* the budget virtual queue certificate holds on any payment stream.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bids import AuctionRound, Bid
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.lyapunov import BudgetQueue
from repro.core.properties import (
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)

# Bounded, strictly positive floats keep the economics meaningful and the
# numerics well-conditioned.
costs_strategy = st.lists(
    st.floats(0.05, 4.0, allow_nan=False), min_size=2, max_size=8
)


def build_round(costs: list[float], seed: int) -> tuple[AuctionRound, dict[int, float]]:
    rng = np.random.default_rng(seed)
    n = len(costs)
    bids = tuple(
        Bid(client_id=i, cost=float(costs[i]), data_size=int(rng.integers(10, 500)))
        for i in range(n)
    )
    values = {i: float(rng.uniform(0.1, 4.0)) for i in range(n)}
    auction_round = AuctionRound(index=0, bids=bids, values=values)
    return auction_round, {i: float(costs[i]) for i in range(n)}


def make_factory(wd_method: str, seed: int):
    rng = np.random.default_rng(seed + 1)
    config = LongTermVCGConfig(
        v=float(rng.uniform(1.0, 50.0)),
        budget_per_round=float(rng.uniform(0.5, 5.0)),
        max_winners=int(rng.integers(1, 5)),
        wd_method=wd_method,
    )
    return lambda: LongTermVCGMechanism(config)


@settings(max_examples=40, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_exact_lt_vcg_truthful(costs, seed):
    auction_round, true_costs = build_round(costs, seed)
    factory = make_factory("exact", seed)
    report = verify_truthfulness(
        factory, auction_round, true_costs, deviation_factors=(0.3, 0.7, 1.3, 3.0)
    )
    assert report.is_truthful, report.violations()


@settings(max_examples=30, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_greedy_lt_vcg_truthful(costs, seed):
    auction_round, true_costs = build_round(costs, seed)
    factory = make_factory("greedy", seed)
    report = verify_truthfulness(
        factory,
        auction_round,
        true_costs,
        deviation_factors=(0.5, 1.5, 2.5),
        tolerance=1e-5,
    )
    assert report.is_truthful, report.violations()


@settings(max_examples=40, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_lt_vcg_individually_rational(costs, seed):
    auction_round, _ = build_round(costs, seed)
    for method in ("exact", "greedy"):
        outcome = make_factory(method, seed)().run_round(auction_round)
        assert verify_individual_rationality(outcome, auction_round) == []


@settings(max_examples=40, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_lt_vcg_monotone(costs, seed):
    auction_round, _ = build_round(costs, seed)
    for method in ("exact", "greedy"):
        factory = make_factory(method, seed)
        assert verify_monotonicity(factory, auction_round) == []


@settings(max_examples=50, deadline=None)
@given(
    payments=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=200),
    budget=st.floats(0.1, 5.0, allow_nan=False),
)
def test_budget_queue_certificate(payments, budget):
    """average spend <= budget + Q(T)/T on any payment stream."""
    queue = BudgetQueue(budget_per_round=budget)
    for payment in payments:
        queue.record_spend(payment)
    assert queue.average_spend() <= queue.spend_bound() + 1e-9
    assert queue.backlog >= 0.0
