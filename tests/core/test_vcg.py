"""Tests for repro.core.vcg (the single-round weighted VCG auction)."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.vcg import SingleRoundVCGAuction
from tests.conftest import make_round, random_instance


class TestConstruction:
    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            SingleRoundVCGAuction(value_weight=0.0)
        with pytest.raises(ValueError):
            SingleRoundVCGAuction(cost_weight=-1.0)

    def test_rejects_negative_offsets(self):
        with pytest.raises(ValueError):
            SingleRoundVCGAuction(offsets={0: -1.0})

    def test_rejects_unpaired_demands(self):
        with pytest.raises(ValueError):
            SingleRoundVCGAuction(demands={0: 1.0})

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            SingleRoundVCGAuction(wd_method="quantum")


class TestSelection:
    def test_positive_surplus_clients_selected(self):
        auction = SingleRoundVCGAuction(value_weight=1.0, cost_weight=1.0)
        auction_round = make_round([0.5, 2.0], [1.0, 1.0])
        result = auction.run(auction_round)
        assert result.selected == (0,)  # client 1 has negative surplus

    def test_max_winners_enforced(self):
        auction = SingleRoundVCGAuction(max_winners=2)
        auction_round = make_round([0.1, 0.1, 0.1], [1.0, 2.0, 3.0])
        result = auction.run(auction_round)
        assert len(result.selected) == 2
        assert set(result.selected) == {1, 2}

    def test_offsets_bias_selection(self):
        auction_round = make_round([0.5, 0.5], [1.0, 1.0])
        no_offset = SingleRoundVCGAuction(max_winners=1).run(auction_round)
        with_offset = SingleRoundVCGAuction(max_winners=1, offsets={1: 2.0}).run(
            auction_round
        )
        assert no_offset.selected == (0,)  # tie broken by index
        assert with_offset.selected == (1,)

    def test_capacity_constraint(self):
        auction = SingleRoundVCGAuction(
            demands={0: 2.0, 1: 2.0, 2: 2.0}, capacity=4.0
        )
        auction_round = make_round([0.1, 0.1, 0.1], [2.0, 2.0, 2.0])
        result = auction.run(auction_round)
        assert len(result.selected) == 2

    def test_missing_demand_raises(self):
        auction = SingleRoundVCGAuction(demands={0: 1.0}, capacity=2.0)
        auction_round = make_round([0.1, 0.1], [1.0, 1.0])
        with pytest.raises(KeyError):
            auction.run(auction_round)

    def test_empty_selection_when_all_unprofitable(self):
        auction = SingleRoundVCGAuction()
        auction_round = make_round([5.0, 6.0], [1.0, 1.0])
        result = auction.run(auction_round)
        assert result.selected == ()
        assert result.total_payment == 0.0


class TestPayments:
    def test_individually_rational(self, rng):
        for method in ("exact", "greedy"):
            for trial in range(20):
                auction_round, costs = random_instance(rng, int(rng.integers(2, 10)))
                auction = SingleRoundVCGAuction(
                    value_weight=10.0,
                    cost_weight=12.0,
                    max_winners=3,
                    wd_method=method,
                )
                result = auction.run(auction_round)
                for client_id in result.selected:
                    assert result.payments[client_id] >= costs[client_id] - 1e-9

    def test_second_price_intuition(self):
        """Two identical-value clients, cap 1: winner paid loser's bid."""
        auction = SingleRoundVCGAuction(max_winners=1)
        auction_round = make_round([0.4, 0.6], [1.0, 1.0])
        result = auction.run(auction_round)
        assert result.selected == (0,)
        assert result.payments[0] == pytest.approx(0.6)

    def test_unconstrained_payment_is_value_threshold(self):
        """Without constraints, a winner's critical bid makes surplus zero."""
        auction = SingleRoundVCGAuction(value_weight=1.0, cost_weight=1.0)
        auction_round = make_round([0.3], [1.2])
        result = auction.run(auction_round)
        assert result.payments[0] == pytest.approx(1.2)

    def test_payment_independent_of_winning_bid(self):
        """Lowering a winning bid does not change its payment (exact WD)."""
        base = make_round([0.4, 0.6, 0.9], [1.0, 1.0, 1.0])
        auction = SingleRoundVCGAuction(max_winners=2)
        payment_at_04 = auction.run(base).payments[0]
        lowered = base.with_replaced_bid(Bid(client_id=0, cost=0.1, data_size=100))
        payment_at_01 = SingleRoundVCGAuction(max_winners=2).run(lowered).payments[0]
        assert payment_at_04 == pytest.approx(payment_at_01)

    def test_greedy_payments_close_to_exact_on_top_k_instances(self, rng):
        """With only a cardinality constraint greedy == top-k, payments match."""
        for _ in range(10):
            auction_round, _ = random_instance(rng, 6)
            exact = SingleRoundVCGAuction(max_winners=3, wd_method="exact").run(
                auction_round
            )
            greedy = SingleRoundVCGAuction(max_winners=3, wd_method="greedy").run(
                auction_round
            )
            assert exact.selected == greedy.selected
            for client_id in exact.selected:
                assert greedy.payments[client_id] == pytest.approx(
                    exact.payments[client_id], abs=1e-5
                )


class TestResultFields:
    def test_declared_welfare(self):
        auction = SingleRoundVCGAuction()
        auction_round = make_round([0.5, 0.2], [1.0, 1.0])
        result = auction.run(auction_round)
        assert result.declared_welfare == pytest.approx((1.0 - 0.5) + (1.0 - 0.2))

    def test_scores_for_all_candidates(self):
        auction = SingleRoundVCGAuction(value_weight=2.0, cost_weight=4.0)
        auction_round = make_round([0.5, 3.0], [1.0, 1.0])
        result = auction.run(auction_round)
        assert result.scores[0] == pytest.approx(2.0 - 4.0 * 0.5)
        assert result.scores[1] == pytest.approx(2.0 - 4.0 * 3.0)
