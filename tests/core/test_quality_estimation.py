"""Tests for repro.core.quality_estimation (learned valuation)."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.quality_estimation import LearnedValuation
from repro.core.valuation import LinearValuation


def bid(client_id=0, data_size=100):
    return Bid(client_id=client_id, cost=1.0, data_size=data_size)


class TestLearnedValuation:
    def test_unobserved_clients_are_optimistic(self):
        model = LearnedValuation(
            LinearValuation(), blend=0.0, optimistic_value=3.0
        )
        assert model.value_of(bid()) == pytest.approx(3.0)

    def test_blend_mixes_prior_and_ucb(self):
        model = LearnedValuation(
            LinearValuation(), blend=0.5, optimistic_value=3.0
        )
        # prior value for a 100-sample, quality-1 client is 1.0
        assert model.value_of(bid()) == pytest.approx(0.5 * 1.0 + 0.5 * 3.0)

    def test_observations_update_mean(self):
        model = LearnedValuation(LinearValuation(), blend=0.0, bonus=0.0)
        model.observe_contributions({0: 2.0})
        model.observe_contributions({0: 4.0})
        assert model.mean_contribution(0) == pytest.approx(3.0)
        assert model.observations_of(0) == 2
        model.observe_selection((0,))
        assert model.value_of(bid(0)) == pytest.approx(3.0)

    def test_exploration_bonus_shrinks_with_observations(self):
        model = LearnedValuation(LinearValuation(), blend=0.0, bonus=1.0)
        for _ in range(20):
            model.observe_selection((0,))
        model.observe_contributions({0: 1.0})
        few = model.ucb_of(0)
        for _ in range(50):
            model.observe_contributions({0: 1.0})
        many = model.ucb_of(0)
        assert few > many
        assert many == pytest.approx(1.0, abs=0.5)

    def test_bid_independence(self):
        model = LearnedValuation(LinearValuation(), blend=0.5)
        model.observe_contributions({0: 1.5})
        cheap = Bid(client_id=0, cost=0.01, data_size=100)
        expensive = Bid(client_id=0, cost=99.0, data_size=100)
        assert model.value_of(cheap) == model.value_of(expensive)

    def test_rejects_negative_contributions(self):
        model = LearnedValuation(LinearValuation())
        with pytest.raises(ValueError):
            model.observe_contributions({0: -1.0})

    def test_validation(self):
        with pytest.raises(ValueError):
            LearnedValuation(LinearValuation(), blend=1.5)
        with pytest.raises(ValueError):
            LearnedValuation(LinearValuation(), bonus=-1.0)

    def test_identifies_the_truly_useful_client(self, rng):
        """Bandit sanity: with equal priors, the client whose contributions
        are consistently larger ends up with the higher value."""
        model = LearnedValuation(
            LinearValuation(), blend=0.2, bonus=0.3, optimistic_value=1.0
        )
        for _ in range(100):
            model.observe_contributions({0: float(rng.normal(2.0, 0.1))})
            model.observe_contributions({1: float(rng.normal(0.5, 0.1))})
            model.observe_selection((0, 1))
        assert model.value_of(bid(0)) > model.value_of(bid(1)) + 0.5
