"""Property tests: batched solvers are bit-identical to the scalar path.

``solve_top_k_batch`` / ``solve_greedy_batch`` / the batched top-k Clarke
pivots process ``(R, N)`` matrices; each row must reproduce the scalar
solver on that row's instance *exactly* (same winners, same tie-breaks, same
objective bits) — that is the contract the batched mechanism overrides and
the batched simulation path rest on.  Instances are drawn with deliberately
ties-heavy scores so positional tie-breaking is actually exercised.
"""

import numpy as np

from repro.core.payments import (
    greedy_critical_scores,
    greedy_critical_scores_batch,
    top_k_critical_scores,
    top_k_critical_scores_batch,
)
from repro.core.winner_determination import (
    WinnerDeterminationProblem,
    greedy_order_batch,
    solve_greedy,
    solve_greedy_batch,
    solve_top_k,
    solve_top_k_batch,
)


def tieable_scores(rng, shape):
    """Scores from a coarse grid (ties likely) with negatives and zeros."""
    grid = np.array([-1.0, 0.0, 0.25, 0.5, 0.5, 1.0, 1.5, 2.0])
    return grid[rng.integers(0, len(grid), size=shape)]


def row_problem(scores_row, demands_row=None, capacity=None, max_winners=None):
    return WinnerDeterminationProblem(
        scores=tuple(float(s) for s in scores_row),
        demands=None if demands_row is None else tuple(float(d) for d in demands_row),
        capacity=capacity,
        max_winners=max_winners,
    )


class TestTopKBatch:
    def test_matches_scalar_bitwise(self):
        rng = np.random.default_rng(21)
        for trial in range(40):
            num, width = int(rng.integers(1, 12)), int(rng.integers(1, 15))
            scores = tieable_scores(rng, (num, width))
            max_winners = int(rng.integers(0, width + 1)) if rng.random() < 0.7 else None
            batch = solve_top_k_batch(scores, max_winners)
            for r in range(num):
                scalar = solve_top_k(row_problem(scores[r], max_winners=max_winners))
                assert batch[r].selected == scalar.selected, (trial, r)
                assert batch[r].objective == scalar.objective, (trial, r)

    def test_criticals_match_scalar(self):
        rng = np.random.default_rng(22)
        for _ in range(40):
            num, width = int(rng.integers(1, 10)), int(rng.integers(1, 15))
            scores = tieable_scores(rng, (num, width))
            max_winners = int(rng.integers(1, width + 1))
            allocations = solve_top_k_batch(scores, max_winners)
            batched = top_k_critical_scores_batch(scores, allocations)
            for r in range(num):
                scalar = top_k_critical_scores(
                    row_problem(scores[r], max_winners=max_winners), allocations[r]
                )
                assert batched[r] == scalar

    def test_empty_matrix(self):
        assert solve_top_k_batch(np.zeros((3, 0))) == [
            solve_top_k(row_problem(())) for _ in range(3)
        ]


class TestGreedyBatch:
    def test_cardinality_matches_scalar_bitwise(self):
        rng = np.random.default_rng(23)
        for trial in range(40):
            num, width = int(rng.integers(1, 12)), int(rng.integers(1, 15))
            scores = tieable_scores(rng, (num, width))
            max_winners = int(rng.integers(1, width + 1)) if rng.random() < 0.7 else None
            batch = solve_greedy_batch(scores, max_winners=max_winners)
            for r in range(num):
                scalar = solve_greedy(row_problem(scores[r], max_winners=max_winners))
                assert batch[r].selected == scalar.selected, (trial, r)
                assert batch[r].objective == scalar.objective, (trial, r)

    def test_knapsack_matches_scalar_bitwise(self):
        rng = np.random.default_rng(24)
        for trial in range(60):
            num, width = int(rng.integers(1, 10)), int(rng.integers(1, 15))
            scores = tieable_scores(rng, (num, width))
            # Coarse demand grid too, so equal densities arise.
            demands = np.array([0.5, 1.0, 1.0, 2.0])[
                rng.integers(0, 4, size=(num, width))
            ]
            capacity = float(rng.uniform(0.5, 5.0))
            max_winners = int(rng.integers(1, width + 1)) if rng.random() < 0.5 else None
            batch = solve_greedy_batch(scores, demands, capacity, max_winners)
            for r in range(num):
                scalar = solve_greedy(
                    row_problem(scores[r], demands[r], capacity, max_winners)
                )
                assert batch[r].selected == scalar.selected, (trial, r)
                assert batch[r].objective == scalar.objective, (trial, r)

    def test_padded_columns_never_selected(self):
        # Padding convention: masked-out cells carry score 0 — never chosen.
        scores = np.array([[1.0, 0.0, 0.0], [2.0, 1.0, 0.0]])
        demands = np.array([[1.0, 0.0, 0.0], [1.0, 1.0, 0.0]])
        for allocation in solve_greedy_batch(scores, demands, 10.0):
            assert all(scores[0].size and s >= 0 for s in allocation.selected)
        batch = solve_greedy_batch(scores, demands, 10.0)
        assert batch[0].selected == (0,)
        assert batch[1].selected == (0, 1)


class TestGreedyCriticalsBatch:
    def test_cardinality_matches_scalar_bitwise(self):
        rng = np.random.default_rng(25)
        for trial in range(60):
            num, width = int(rng.integers(1, 12)), int(rng.integers(1, 15))
            scores = tieable_scores(rng, (num, width))
            max_winners = (
                int(rng.integers(0, width + 1)) if rng.random() < 0.8 else None
            )
            allocations = solve_greedy_batch(scores, max_winners=max_winners)
            batched = greedy_critical_scores_batch(
                scores, allocations, max_winners=max_winners
            )
            for r in range(num):
                problem = row_problem(scores[r], max_winners=max_winners)
                scalar = greedy_critical_scores(problem, solve_greedy(problem))
                assert batched[r] == scalar, (trial, r)

    def test_knapsack_matches_scalar_bitwise(self):
        rng = np.random.default_rng(26)
        for trial in range(60):
            num, width = int(rng.integers(1, 10)), int(rng.integers(1, 15))
            scores = tieable_scores(rng, (num, width))
            # Coarse demand grid too, so equal densities arise.
            demands = np.array([0.5, 1.0, 1.0, 2.0])[
                rng.integers(0, 4, size=(num, width))
            ]
            capacity = float(rng.uniform(0.5, 5.0))
            max_winners = (
                int(rng.integers(1, width + 1)) if rng.random() < 0.5 else None
            )
            allocations = solve_greedy_batch(scores, demands, capacity, max_winners)
            batched = greedy_critical_scores_batch(
                scores, allocations, demands, capacity, max_winners
            )
            for r in range(num):
                problem = row_problem(scores[r], demands[r], capacity, max_winners)
                scalar = greedy_critical_scores(problem, solve_greedy(problem))
                assert batched[r] == scalar, (trial, r)

    def test_precomputed_order_matches_fresh_sort(self):
        rng = np.random.default_rng(27)
        scores = tieable_scores(rng, (6, 10))
        demands = np.array([0.5, 1.0, 1.0, 2.0])[rng.integers(0, 4, size=(6, 10))]
        order, counts = greedy_order_batch(scores, demands)
        allocations = solve_greedy_batch(
            scores, demands, 4.0, 3, order=order, counts=counts
        )
        assert allocations == solve_greedy_batch(scores, demands, 4.0, 3)
        with_order = greedy_critical_scores_batch(
            scores, allocations, demands, 4.0, 3, order=order, counts=counts
        )
        assert with_order == greedy_critical_scores_batch(
            scores, allocations, demands, 4.0, 3
        )

    def test_dict_iteration_order_follows_selected(self):
        # run_batch's winner-major gather relies on this ordering contract.
        scores = np.array([[3.0, 2.0, 1.0, 2.5]])
        allocations = solve_greedy_batch(scores, max_winners=3)
        (critical,) = greedy_critical_scores_batch(
            scores, allocations, max_winners=3
        )
        assert list(critical) == list(allocations[0].selected)
