"""RoundBatch: columnar layout, round-trips, and deviation grids."""

import numpy as np
import pytest

from repro.core.bids import AuctionRound, Bid, RoundBatch
from tests.conftest import make_round, random_instance


def random_rounds(rng, count, max_size=10):
    rounds = []
    for t in range(count):
        auction_round, _ = random_instance(rng, int(rng.integers(1, max_size)))
        rounds.append(
            AuctionRound(
                index=t, bids=auction_round.bids, values=auction_round.values
            )
        )
    return rounds


class TestFromRounds:
    def test_round_trip_preserves_bids_order_and_values(self, rng):
        rounds = random_rounds(rng, 12)
        batch = RoundBatch.from_rounds(rounds)
        assert len(batch) == 12
        for r, original in enumerate(rounds):
            restored = batch.round_at(r)
            assert restored.index == original.index
            assert restored.bids == original.bids
            assert dict(restored.values) == dict(original.values)

    def test_columnar_round_trip_materialises_identically(self, rng):
        # Strip the cached round objects so round_at rebuilds from columns.
        rounds = random_rounds(rng, 8)
        batch = RoundBatch.from_rounds(rounds)
        rebuilt = RoundBatch.from_columns(
            batch.indices,
            batch.client_ids,
            batch.mask,
            batch.costs,
            batch.values,
            batch.data_sizes,
            batch.qualities,
        )
        for r, original in enumerate(rounds):
            restored = rebuilt.round_at(r)
            assert restored.bids == original.bids
            assert dict(restored.values) == dict(original.values)

    def test_ragged_rounds_are_masked(self, rng):
        rounds = [make_round([0.5]), make_round([0.5, 0.7, 0.9])]
        batch = RoundBatch.from_rounds(rounds)
        assert batch.width == 3
        assert batch.sizes().tolist() == [1, 3]
        assert batch.mask.tolist() == [[True, False, False], [True, True, True]]

    def test_empty_round_supported(self):
        empty = AuctionRound(index=4, bids=(), values={})
        batch = RoundBatch.from_rounds([empty, make_round([0.3])])
        assert batch.sizes().tolist() == [0, 1]
        assert batch.round_at(0).bids == ()

    def test_iteration_yields_rounds_in_order(self, rng):
        rounds = random_rounds(rng, 5)
        batch = RoundBatch.from_rounds(rounds)
        assert [r.index for r in batch] == [r.index for r in rounds]


class TestFromColumns:
    def test_shape_mismatch_rejected(self):
        mask = np.ones((2, 3), dtype=bool)
        ids = np.arange(6).reshape(2, 3)
        costs = np.ones((2, 3))
        with pytest.raises(ValueError, match="values"):
            RoundBatch.from_columns(
                np.arange(2), ids, mask, costs, values=np.ones((2, 2))
            )
        with pytest.raises(ValueError, match="indices"):
            RoundBatch.from_columns(
                np.arange(3), ids, mask, costs, values=np.ones((2, 3))
            )

    def test_duplicate_client_rejected(self):
        mask = np.ones((1, 2), dtype=bool)
        with pytest.raises(ValueError, match="duplicate"):
            RoundBatch.from_columns(
                np.arange(1),
                np.array([[3, 3]]),
                mask,
                np.ones((1, 2)),
                np.ones((1, 2)),
            )

    def test_negative_cost_rejected(self):
        mask = np.ones((1, 2), dtype=bool)
        with pytest.raises(ValueError, match=">= 0"):
            RoundBatch.from_columns(
                np.arange(1),
                np.array([[0, 1]]),
                mask,
                np.array([[0.5, -0.1]]),
                np.ones((1, 2)),
            )

    def test_padded_cells_ignored(self):
        mask = np.array([[True, False]])
        batch = RoundBatch.from_columns(
            np.arange(1),
            np.array([[7, 7]]),  # duplicate id only in the padded cell
            mask,
            np.array([[0.5, -1.0]]),  # negative cost only in the padded cell
            np.ones((1, 2)),
        )
        assert batch.round_at(0).client_ids == (7,)


class TestDeviations:
    def test_matches_with_replaced_bid(self, rng):
        auction_round, true_costs = random_instance(rng, 6)
        client_id = auction_round.client_ids[2]
        costs = [true_costs[client_id] * f for f in (0.25, 1.0, 3.0)]
        batch = RoundBatch.deviations(auction_round, client_id, costs)
        for d, cost in enumerate(costs):
            expected = auction_round.with_replaced_bid(
                auction_round.bid_of(client_id).with_cost(cost)
            )
            restored = batch.round_at(d)
            assert restored.bids == expected.bids
            assert dict(restored.values) == dict(expected.values)

    def test_grid_spans_multiple_clients(self, rng):
        auction_round, true_costs = random_instance(rng, 5)
        grid = [
            (client_id, true_costs[client_id] * factor)
            for client_id in auction_round.client_ids
            for factor in (0.5, 2.0)
        ]
        batch = RoundBatch.deviation_grid(auction_round, grid)
        assert len(batch) == len(grid)
        for d, (client_id, cost) in enumerate(grid):
            expected = auction_round.with_replaced_bid(
                auction_round.bid_of(client_id).with_cost(cost)
            )
            assert batch.round_at(d).bids == expected.bids

    def test_unknown_client_rejected(self, rng):
        auction_round, _ = random_instance(rng, 3)
        with pytest.raises(KeyError):
            RoundBatch.deviations(auction_round, 99, [0.5])

    def test_negative_deviation_rejected(self, rng):
        auction_round, _ = random_instance(rng, 3)
        with pytest.raises(ValueError, match=">= 0"):
            RoundBatch.deviations(auction_round, 0, [-0.5])
