"""Tests for repro.core.sustainability."""

import numpy as np
import pytest

from repro.core.sustainability import ParticipationTracker


class TestParticipationTracker:
    def test_backlog_grows_when_starved(self):
        tracker = ParticipationTracker({0: 0.5})
        for _ in range(4):
            tracker.observe_round(())
        assert tracker.backlog_of(0) == pytest.approx(2.0)

    def test_backlog_shrinks_when_selected(self):
        tracker = ParticipationTracker({0: 0.5})
        tracker.observe_round(())  # Z = 0.5
        tracker.observe_round((0,))  # Z = max(0.5 + 0.5 - 1, 0) = 0
        assert tracker.backlog_of(0) == pytest.approx(0.0)

    def test_offsets_scaled_and_capped(self):
        tracker = ParticipationTracker({0: 1.0}, weight=2.0, max_offset=3.0)
        for _ in range(10):
            tracker.observe_round(())
        offsets = tracker.offsets([0])
        assert offsets[0] == pytest.approx(3.0)  # 2 * 10 capped at 3

    def test_untracked_clients_get_zero_offset(self):
        tracker = ParticipationTracker({0: 0.2})
        assert tracker.offsets([0, 99])[99] == 0.0

    def test_participation_rates(self):
        tracker = ParticipationTracker({0: 0.5, 1: 0.5})
        tracker.observe_round((0,))
        tracker.observe_round((0, 1))
        assert tracker.participation_rate(0) == pytest.approx(1.0)
        assert tracker.participation_rate(1) == pytest.approx(0.5)

    def test_deficits(self):
        tracker = ParticipationTracker({0: 0.8})
        tracker.observe_round(())
        tracker.observe_round((0,))
        deficits = tracker.deficits()
        assert deficits[0] == pytest.approx(0.8 - 0.5)

    def test_feasibility_check(self):
        tracker = ParticipationTracker({0: 0.6, 1: 0.6})
        tracker.check_feasibility(max_winners=2)  # 1.2 <= 2 fine
        with pytest.raises(ValueError, match="targets sum"):
            ParticipationTracker({0: 0.6, 1: 0.6}).check_feasibility(max_winners=1)

    def test_rejects_invalid_targets(self):
        with pytest.raises(ValueError):
            ParticipationTracker({0: 1.5})
        with pytest.raises(ValueError):
            ParticipationTracker({0: -0.1})

    def test_reset(self):
        tracker = ParticipationTracker({0: 0.5})
        tracker.observe_round(())
        tracker.reset()
        assert tracker.backlog_of(0) == 0.0
        assert tracker.participation_rate(0) == 0.0

    def test_queue_keeps_long_run_rate_near_target(self, rng):
        """Simulate always-select-the-most-backlogged with cap 1: each client's
        rate converges to ~1/n when all targets are 1/n."""
        n = 5
        tracker = ParticipationTracker({i: 1.0 / n for i in range(n)})
        for _ in range(2000):
            most_backlogged = max(range(n), key=tracker.backlog_of)
            tracker.observe_round((most_backlogged,))
        for i in range(n):
            assert tracker.participation_rate(i) == pytest.approx(1.0 / n, abs=0.02)

    def test_max_backlog(self):
        tracker = ParticipationTracker({0: 1.0, 1: 0.0})
        tracker.observe_round(())
        assert tracker.max_backlog() == pytest.approx(1.0)
