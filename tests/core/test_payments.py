"""Tests for repro.core.payments."""

import numpy as np
import pytest

from repro.core.payments import (
    clarke_critical_scores,
    clarke_payments,
    critical_scores_by_search,
    critical_value_payments,
)
from repro.core.winner_determination import (
    WinnerDeterminationProblem,
    solve_brute_force,
    solve_greedy,
    solve_top_k,
)


def problem(scores, demands=None, capacity=None, max_winners=None):
    return WinnerDeterminationProblem(
        scores=tuple(scores),
        demands=None if demands is None else tuple(demands),
        capacity=capacity,
        max_winners=max_winners,
    )


class TestClarkeCriticalScores:
    def test_top_k_critical_is_next_best_score(self):
        # Top-2 of [5, 4, 3]: winner 0's critical score is the displaced 3.
        p = problem([5.0, 4.0, 3.0], max_winners=2)
        allocation = solve_top_k(p)
        critical = clarke_critical_scores(p, allocation, solver=solve_top_k)
        assert critical[0] == pytest.approx(3.0)
        assert critical[1] == pytest.approx(3.0)

    def test_unconstrained_critical_is_zero(self):
        # With no constraint a winner only needs a positive score.
        p = problem([5.0, 4.0])
        allocation = solve_top_k(p)
        critical = clarke_critical_scores(p, allocation, solver=solve_top_k)
        assert critical[0] == pytest.approx(0.0)
        assert critical[1] == pytest.approx(0.0)

    def test_bounds_hold(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            n = int(rng.integers(2, 10))
            p = problem(
                rng.uniform(-1, 4, n).tolist(),
                demands=rng.uniform(0.2, 2.0, n).tolist(),
                capacity=float(rng.uniform(0.5, 4.0)),
            )
            allocation = solve_brute_force(p)
            critical = clarke_critical_scores(p, allocation, solver=solve_brute_force)
            for index, sigma in critical.items():
                assert 0.0 <= sigma <= p.scores[index] + 1e-9

    def test_critical_is_a_true_threshold(self):
        """Winner stays selected above sigma and drops below it (exact WD)."""
        rng = np.random.default_rng(9)
        for _ in range(15):
            n = int(rng.integers(2, 8))
            p = problem(
                rng.uniform(0.1, 4, n).tolist(),
                max_winners=int(rng.integers(1, n + 1)),
            )
            allocation = solve_top_k(p)
            critical = clarke_critical_scores(p, allocation, solver=solve_top_k)
            for index, sigma in critical.items():
                above = solve_top_k(p.with_score(index, sigma + 1e-6))
                assert index in above.selected
                if sigma > 1e-6:
                    below = solve_top_k(p.with_score(index, sigma - 1e-6))
                    # Either strictly loses or ties; losing is the common case.
                    if index in below.selected:
                        # tie at the boundary — objective unchanged
                        assert below.objective == pytest.approx(
                            allocation.objective - p.scores[index] + sigma - 1e-6,
                            abs=1e-5,
                        )


class TestCriticalScoresBySearch:
    def test_matches_clarke_on_top_k(self):
        p = problem([5.0, 4.0, 3.0, 1.0], max_winners=2)
        allocation = solve_top_k(p)
        clarke = clarke_critical_scores(p, allocation, solver=solve_top_k)
        searched = critical_scores_by_search(
            p, allocation, solver=solve_top_k, tolerance=1e-12
        )
        for index in allocation.selected:
            assert searched[index] == pytest.approx(clarke[index], abs=1e-6)

    def test_greedy_critical_within_score(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            n = int(rng.integers(2, 10))
            p = problem(
                rng.uniform(-1, 3, n).tolist(),
                demands=rng.uniform(0.2, 2.0, n).tolist(),
                capacity=float(rng.uniform(0.5, 4.0)),
            )
            allocation = solve_greedy(p)
            critical = critical_scores_by_search(p, allocation)
            for index, sigma in critical.items():
                assert 0.0 <= sigma <= p.scores[index] + 1e-9
                # Winner still wins at its critical score.
                assert index in solve_greedy(p.with_score(index, sigma)).selected

    def test_rejects_bad_tolerance(self):
        p = problem([1.0])
        with pytest.raises(ValueError):
            critical_scores_by_search(p, solve_greedy(p), tolerance=0.0)


class TestMonetaryConversion:
    def test_clarke_payment_at_least_bid(self):
        # score_i = w_i - lam * b_i ; payment = (w_i - sigma_i) / lam >= b_i
        lam = 3.0
        weights = {0: 10.0, 1: 9.0, 2: 8.0}
        bids = {0: 1.0, 1: 1.5, 2: 2.0}
        scores = [weights[i] - lam * bids[i] for i in range(3)]
        p = problem(scores, max_winners=2)
        allocation = solve_top_k(p)
        payments = clarke_payments(p, allocation, weights, lam, solver=solve_top_k)
        for index in allocation.selected:
            assert payments[index] >= bids[index] - 1e-9

    def test_rejects_nonpositive_cost_weight(self):
        p = problem([1.0])
        allocation = solve_top_k(p)
        with pytest.raises(ValueError):
            clarke_payments(p, allocation, {0: 1.0}, 0.0, solver=solve_top_k)

    def test_critical_value_payments_at_least_bid(self):
        lam = 2.0
        weights = {i: w for i, w in enumerate([8.0, 7.0, 6.0, 5.0])}
        bids = {0: 0.5, 1: 1.0, 2: 1.5, 3: 2.0}
        scores = [weights[i] - lam * bids[i] for i in range(4)]
        p = problem(scores, demands=(1.0, 1.0, 1.0, 1.0), capacity=2.0)
        allocation = solve_greedy(p)
        payments = critical_value_payments(p, allocation, weights, lam)
        for index in allocation.selected:
            assert payments[index] >= bids[index] - 1e-6
