"""Tests for repro.core.longterm_vcg (the LT-VCG mechanism)."""

import numpy as np
import pytest

from repro.core.bids import Bid, AuctionRound
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from tests.conftest import make_round


def random_rounds(rng, num_rounds, n, index_start=0):
    rounds = []
    for t in range(num_rounds):
        bids = tuple(
            Bid(client_id=i, cost=float(rng.uniform(0.2, 1.5)), data_size=100)
            for i in range(n)
        )
        values = {i: float(rng.uniform(0.5, 2.5)) for i in range(n)}
        rounds.append(AuctionRound(index=index_start + t, bids=bids, values=values))
    return rounds


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LongTermVCGConfig(v=0.0)
        with pytest.raises(ValueError):
            LongTermVCGConfig(budget_per_round=-1.0)
        with pytest.raises(ValueError):
            LongTermVCGConfig(max_winners=0)
        with pytest.raises(ValueError):
            LongTermVCGConfig(sustainability_weight=-1.0)

    def test_infeasible_participation_targets_rejected(self):
        with pytest.raises(ValueError, match="targets sum"):
            LongTermVCGMechanism(
                LongTermVCGConfig(
                    max_winners=1,
                    participation_targets={0: 0.8, 1: 0.8},
                )
            )


class TestSingleRoundBehaviour:
    def test_outcome_well_formed(self, simple_round):
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=10.0, budget_per_round=1.0, max_winners=3)
        )
        outcome = mechanism.run_round(simple_round)
        assert outcome.round_index == simple_round.index
        assert all(cid in simple_round.client_ids for cid in outcome.selected)
        assert set(outcome.payments) == set(outcome.selected)
        assert "budget_backlog" in outcome.diagnostics

    def test_queue_updates_after_round(self, simple_round):
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=10.0, budget_per_round=0.1, max_winners=3)
        )
        assert mechanism.budget_backlog == 0.0
        outcome = mechanism.run_round(simple_round)
        expected = max(outcome.total_payment - 0.1, 0.0)
        assert mechanism.budget_backlog == pytest.approx(expected)

    def test_decision_uses_pre_round_queue(self, simple_round):
        """cost_weight diagnostic equals V + Q *before* the round's spend."""
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=10.0, budget_per_round=0.1, max_winners=3)
        )
        first = mechanism.run_round(simple_round)
        assert first.diagnostics["cost_weight"] == pytest.approx(10.0)
        second_round = make_round([0.5, 0.8], [1.0, 1.5], index=1)
        second = mechanism.run_round(second_round)
        assert second.diagnostics["cost_weight"] == pytest.approx(
            10.0 + mechanismish_backlog_after(first, 0.1)
        )


def mechanismish_backlog_after(outcome, budget):
    return max(outcome.total_payment - budget, 0.0)


class TestLongRunBehaviour:
    def test_average_spend_converges_to_budget(self, rng):
        budget = 1.5
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=5.0, budget_per_round=budget, max_winners=2)
        )
        total = 0.0
        rounds = random_rounds(rng, 800, 8)
        for auction_round in rounds:
            total += mechanism.run_round(auction_round).total_payment
        average = total / len(rounds)
        # Queue backlog bound: average <= B + Q(T)/T.
        assert average <= budget + mechanism.budget_backlog / len(rounds) + 1e-9
        assert average <= budget * 1.15  # loose empirical compliance

    def test_larger_v_spends_more_welfare_chasing(self, rng):
        """Higher V = weaker budget pressure = (weakly) more spend/welfare."""
        def run(v, seed):
            local_rng = np.random.default_rng(seed)
            mechanism = LongTermVCGMechanism(
                LongTermVCGConfig(v=v, budget_per_round=0.5, max_winners=3)
            )
            welfare = 0.0
            for auction_round in random_rounds(local_rng, 300, 8):
                outcome = mechanism.run_round(auction_round)
                welfare += outcome.diagnostics["declared_welfare"]
            return welfare, mechanism.budget_backlog

        welfare_small_v, backlog_small_v = run(1.0, 0)
        welfare_large_v, backlog_large_v = run(200.0, 0)
        assert welfare_large_v >= welfare_small_v
        assert backlog_large_v >= backlog_small_v

    def test_sustainability_targets_met(self, rng):
        """With per-client targets, every client's rate approaches its target."""
        n = 6
        targets = {i: 0.3 for i in range(n)}
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(
                v=10.0,
                budget_per_round=5.0,
                max_winners=3,
                participation_targets=targets,
                sustainability_weight=5.0,
            )
        )
        for auction_round in random_rounds(rng, 600, n):
            mechanism.run_round(auction_round)
        assert mechanism.participation is not None
        for i in range(n):
            assert mechanism.participation.participation_rate(i) >= 0.25

    def test_reset_restores_fresh_state(self, rng):
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(
                v=5.0,
                budget_per_round=0.2,
                max_winners=2,
                participation_targets={i: 0.1 for i in range(5)},
            )
        )
        rounds = random_rounds(rng, 50, 5)
        first_run = [mechanism.run_round(r).selected for r in rounds]
        mechanism.reset()
        second_run = [mechanism.run_round(r).selected for r in rounds]
        assert first_run == second_run

    def test_greedy_variant_runs(self, rng):
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=10.0, budget_per_round=1.0, max_winners=3, wd_method="greedy")
        )
        for auction_round in random_rounds(rng, 20, 6):
            outcome = mechanism.run_round(auction_round)
            for cid in outcome.selected:
                assert outcome.payments[cid] >= auction_round.bid_of(cid).cost - 1e-9


class TestMechanismStateDict:
    """Snapshot/restore of the mechanism's cross-round state."""

    def _config(self, **overrides):
        base = dict(
            v=8.0,
            budget_per_round=1.0,
            max_winners=3,
            participation_targets={i: 0.3 for i in range(6)},
        )
        base.update(overrides)
        return LongTermVCGConfig(**base)

    def _drive(self, mechanism, rng, rounds=25, n=6):
        outcomes = []
        for index in range(rounds):
            costs = rng.uniform(0.1, 2.0, size=n).tolist()
            values = rng.uniform(0.5, 3.0, size=n).tolist()
            outcomes.append(mechanism.run_round(make_round(costs, values, index=index)))
        return outcomes

    def test_round_trip_resumes_bit_identically(self, rng):
        config = self._config()
        mechanism = LongTermVCGMechanism(config)
        self._drive(mechanism, rng)
        state = mechanism.state_dict()

        # JSON round-trip: the snapshot must survive the disk format.
        import json

        state = json.loads(json.dumps(state))
        resumed = LongTermVCGMechanism(self._config())
        resumed.load_state_dict(state)
        assert resumed.budget_backlog == mechanism.budget_backlog

        # Both copies must now make identical decisions forever after.
        follower = np.random.default_rng(7)
        for index in range(25, 40):
            costs = follower.uniform(0.1, 2.0, size=6).tolist()
            values = follower.uniform(0.5, 3.0, size=6).tolist()
            a = mechanism.run_round(make_round(costs, values, index=index))
            b = resumed.run_round(make_round(costs, values, index=index))
            assert a.selected == b.selected
            assert a.payments == b.payments
            assert a.diagnostics["budget_backlog"] == b.diagnostics["budget_backlog"]

    def test_fingerprint_mismatch_refused(self, rng):
        mechanism = LongTermVCGMechanism(self._config())
        self._drive(mechanism, rng, rounds=5)
        state = mechanism.state_dict()
        other = LongTermVCGMechanism(self._config(v=9.0))
        with pytest.raises(ValueError, match="fingerprint"):
            other.load_state_dict(state)
        for field in ("budget_per_round", "max_winners", "wd_method"):
            change = {"budget_per_round": 2.0, "max_winners": 2,
                      "wd_method": "greedy"}[field]
            assert (
                self._config(**{field: change}).fingerprint()
                != self._config().fingerprint()
            )

    def test_participation_shape_mismatch_refused(self, rng):
        with_participation = LongTermVCGMechanism(self._config())
        self._drive(with_participation, rng, rounds=3)
        without = LongTermVCGMechanism(
            self._config(participation_targets=None)
        )
        with pytest.raises(ValueError):
            without.load_state_dict(with_participation.state_dict())

    def test_solve_cache_not_part_of_state(self, rng):
        mechanism = LongTermVCGMechanism(self._config())
        self._drive(mechanism, rng, rounds=5)
        assert "solve_cache" not in mechanism.state_dict()
        assert "cache" not in mechanism.state_dict()

    def test_stateless_mechanism_contract(self):
        from repro.config import ExperimentConfig
        from repro.mechanisms.registry import build_mechanism

        config = ExperimentConfig(extras={"mechanism": "myopic-vcg"})
        mechanism = build_mechanism(config)
        assert mechanism.state_dict() == {}
        mechanism.load_state_dict({})  # no-op
        with pytest.raises(ValueError):
            mechanism.load_state_dict({"backlog": 1.0})
