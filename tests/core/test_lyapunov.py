"""Tests for repro.core.lyapunov."""

import numpy as np
import pytest

from repro.core.lyapunov import BudgetQueue, DriftPlusPenaltyController, VirtualQueue


class TestVirtualQueue:
    def test_update_recursion(self):
        queue = VirtualQueue()
        assert queue.update(3.0, 1.0) == pytest.approx(2.0)
        assert queue.update(0.0, 5.0) == pytest.approx(0.0)  # clipped at 0

    def test_never_negative(self, rng):
        queue = VirtualQueue()
        for _ in range(200):
            queue.update(float(rng.uniform(0, 2)), float(rng.uniform(0, 2)))
            assert queue.backlog >= 0.0

    def test_history_tracks_every_update(self):
        queue = VirtualQueue(initial=1.0)
        queue.update(2.0, 0.5)
        queue.update(0.0, 10.0)
        assert queue.history == (1.0, 2.5, 0.0)

    def test_averages(self):
        queue = VirtualQueue()
        queue.update(2.0, 1.0)
        queue.update(4.0, 1.0)
        assert queue.average_arrival() == pytest.approx(3.0)
        assert queue.average_service() == pytest.approx(1.0)

    def test_rate_stability_certificate(self):
        queue = VirtualQueue()
        for _ in range(1000):
            queue.update(1.0, 1.0)
        assert queue.is_rate_stable(slack=1e-9)

    def test_reset(self):
        queue = VirtualQueue()
        queue.update(5.0, 0.0)
        queue.reset()
        assert queue.backlog == 0.0
        assert queue.steps == 0

    def test_rejects_negative_inputs(self):
        queue = VirtualQueue()
        with pytest.raises(ValueError):
            queue.update(-1.0, 0.0)
        with pytest.raises(ValueError):
            VirtualQueue(initial=-1.0)


class TestBudgetQueue:
    def test_record_spend(self):
        queue = BudgetQueue(budget_per_round=2.0)
        queue.record_spend(5.0)
        assert queue.backlog == pytest.approx(3.0)
        queue.record_spend(0.0)
        assert queue.backlog == pytest.approx(1.0)

    def test_spend_bound_certifies_average(self, rng):
        queue = BudgetQueue(budget_per_round=1.5)
        for _ in range(500):
            queue.record_spend(float(rng.uniform(0, 3)))
        assert queue.average_spend() <= queue.spend_bound() + 1e-12

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            BudgetQueue(budget_per_round=0.0)


class TestDriftPlusPenaltyController:
    def test_weights_follow_queue(self):
        controller = DriftPlusPenaltyController(v=10.0, budget_per_round=1.0)
        assert controller.value_weight == 10.0
        assert controller.cost_weight == 10.0  # Q starts at 0
        controller.post_round(4.0)
        assert controller.cost_weight == pytest.approx(13.0)

    def test_overspend_raises_cost_weight_monotonically(self):
        controller = DriftPlusPenaltyController(v=5.0, budget_per_round=1.0)
        previous = controller.cost_weight
        for _ in range(10):
            controller.post_round(3.0)
            assert controller.cost_weight > previous
            previous = controller.cost_weight

    def test_underspend_relaxes_back_to_v(self):
        controller = DriftPlusPenaltyController(v=5.0, budget_per_round=1.0)
        controller.post_round(10.0)
        for _ in range(20):
            controller.post_round(0.0)
        assert controller.cost_weight == pytest.approx(5.0)

    def test_reset(self):
        controller = DriftPlusPenaltyController(v=5.0, budget_per_round=1.0)
        controller.post_round(10.0)
        controller.reset()
        assert controller.cost_weight == pytest.approx(5.0)

    def test_rejects_nonpositive_v(self):
        with pytest.raises(ValueError):
            DriftPlusPenaltyController(v=0.0, budget_per_round=1.0)


class TestBoundedHistory:
    """The backlog trace is a bounded ring; the statistics stay exact."""

    def test_bounded_queue_matches_unbounded_aggregates(self, rng):
        bounded = VirtualQueue(history_limit=16)
        unbounded = VirtualQueue(history_limit=None)
        for _ in range(500):
            arrival = float(rng.uniform(0, 2))
            service = float(rng.uniform(0, 2))
            bounded.update(arrival, service)
            unbounded.update(arrival, service)
        assert len(bounded.history) == 16
        assert len(unbounded.history) == 501
        # Exact running aggregates never depend on the retained window.
        assert bounded.backlog == unbounded.backlog
        assert bounded.average_backlog() == pytest.approx(
            sum(unbounded.history) / len(unbounded.history)
        )
        assert bounded.peak_backlog == max(unbounded.history)
        assert bounded.average_arrival() == unbounded.average_arrival()
        assert bounded.average_service() == unbounded.average_service()
        assert bounded.is_rate_stable(1.0) == unbounded.is_rate_stable(1.0)
        # The ring holds exactly the most recent entries.
        assert bounded.history == unbounded.history[-16:]

    def test_default_limit_keeps_short_traces_complete(self):
        queue = VirtualQueue()
        for _ in range(100):
            queue.update(1.0, 0.5)
        assert len(queue.history) == 101

    def test_memory_stays_bounded(self):
        queue = VirtualQueue(history_limit=8)
        for _ in range(10_000):
            queue.update(1.0, 1.0)
        assert len(queue.history) == 8

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            VirtualQueue(history_limit=0)

    def test_reset_preserves_limit(self):
        queue = VirtualQueue(history_limit=4)
        for _ in range(10):
            queue.update(1.0, 0.0)
        queue.reset()
        for _ in range(10):
            queue.update(1.0, 0.0)
        assert len(queue.history) == 4
        assert queue.history_limit == 4


class TestQueueStateDict:
    """Snapshot/restore round-trips bit-identically."""

    def _advance(self, queue, rng, n=50):
        for _ in range(n):
            queue.update(float(rng.uniform(0, 3)), float(rng.uniform(0, 3)))

    def test_round_trip_bit_identical(self, rng):
        queue = VirtualQueue(initial=0.5)
        self._advance(queue, rng)
        state = queue.state_dict()
        restored = VirtualQueue()
        restored.load_state_dict(state)
        assert restored.backlog == queue.backlog
        assert restored.steps == queue.steps
        assert restored.history == queue.history
        assert restored.average_backlog() == queue.average_backlog()
        assert restored.peak_backlog == queue.peak_backlog
        # Identical future trajectories.
        for _ in range(20):
            arrival = float(rng.uniform(0, 2))
            assert queue.update(arrival, 1.0) == restored.update(arrival, 1.0)

    def test_round_trip_survives_json(self, rng):
        import json

        queue = BudgetQueue(budget_per_round=1.5)
        for _ in range(30):
            queue.record_spend(float(rng.uniform(0, 4)))
        state = json.loads(json.dumps(queue.state_dict()))
        restored = BudgetQueue(budget_per_round=1.5)
        restored.load_state_dict(state)
        assert restored.backlog == queue.backlog
        assert restored.spend_bound() == queue.spend_bound()

    def test_malformed_state_rejected(self):
        queue = VirtualQueue()
        with pytest.raises(ValueError):
            queue.load_state_dict({})
        with pytest.raises(ValueError):
            queue.load_state_dict({"backlog": 1.0, "steps": 1, "history": []})
        with pytest.raises(ValueError):
            # history tail must equal the backlog
            queue.load_state_dict(
                {
                    "backlog": 1.0,
                    "steps": 1,
                    "total_arrivals": 1.0,
                    "total_service": 0.0,
                    "backlog_sum": 1.0,
                    "peak": 2.0,
                    "history": [0.0, 2.0],
                }
            )
