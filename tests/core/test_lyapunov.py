"""Tests for repro.core.lyapunov."""

import numpy as np
import pytest

from repro.core.lyapunov import BudgetQueue, DriftPlusPenaltyController, VirtualQueue


class TestVirtualQueue:
    def test_update_recursion(self):
        queue = VirtualQueue()
        assert queue.update(3.0, 1.0) == pytest.approx(2.0)
        assert queue.update(0.0, 5.0) == pytest.approx(0.0)  # clipped at 0

    def test_never_negative(self, rng):
        queue = VirtualQueue()
        for _ in range(200):
            queue.update(float(rng.uniform(0, 2)), float(rng.uniform(0, 2)))
            assert queue.backlog >= 0.0

    def test_history_tracks_every_update(self):
        queue = VirtualQueue(initial=1.0)
        queue.update(2.0, 0.5)
        queue.update(0.0, 10.0)
        assert queue.history == (1.0, 2.5, 0.0)

    def test_averages(self):
        queue = VirtualQueue()
        queue.update(2.0, 1.0)
        queue.update(4.0, 1.0)
        assert queue.average_arrival() == pytest.approx(3.0)
        assert queue.average_service() == pytest.approx(1.0)

    def test_rate_stability_certificate(self):
        queue = VirtualQueue()
        for _ in range(1000):
            queue.update(1.0, 1.0)
        assert queue.is_rate_stable(slack=1e-9)

    def test_reset(self):
        queue = VirtualQueue()
        queue.update(5.0, 0.0)
        queue.reset()
        assert queue.backlog == 0.0
        assert queue.steps == 0

    def test_rejects_negative_inputs(self):
        queue = VirtualQueue()
        with pytest.raises(ValueError):
            queue.update(-1.0, 0.0)
        with pytest.raises(ValueError):
            VirtualQueue(initial=-1.0)


class TestBudgetQueue:
    def test_record_spend(self):
        queue = BudgetQueue(budget_per_round=2.0)
        queue.record_spend(5.0)
        assert queue.backlog == pytest.approx(3.0)
        queue.record_spend(0.0)
        assert queue.backlog == pytest.approx(1.0)

    def test_spend_bound_certifies_average(self, rng):
        queue = BudgetQueue(budget_per_round=1.5)
        for _ in range(500):
            queue.record_spend(float(rng.uniform(0, 3)))
        assert queue.average_spend() <= queue.spend_bound() + 1e-12

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            BudgetQueue(budget_per_round=0.0)


class TestDriftPlusPenaltyController:
    def test_weights_follow_queue(self):
        controller = DriftPlusPenaltyController(v=10.0, budget_per_round=1.0)
        assert controller.value_weight == 10.0
        assert controller.cost_weight == 10.0  # Q starts at 0
        controller.post_round(4.0)
        assert controller.cost_weight == pytest.approx(13.0)

    def test_overspend_raises_cost_weight_monotonically(self):
        controller = DriftPlusPenaltyController(v=5.0, budget_per_round=1.0)
        previous = controller.cost_weight
        for _ in range(10):
            controller.post_round(3.0)
            assert controller.cost_weight > previous
            previous = controller.cost_weight

    def test_underspend_relaxes_back_to_v(self):
        controller = DriftPlusPenaltyController(v=5.0, budget_per_round=1.0)
        controller.post_round(10.0)
        for _ in range(20):
            controller.post_round(0.0)
        assert controller.cost_weight == pytest.approx(5.0)

    def test_reset(self):
        controller = DriftPlusPenaltyController(v=5.0, budget_per_round=1.0)
        controller.post_round(10.0)
        controller.reset()
        assert controller.cost_weight == pytest.approx(5.0)

    def test_rejects_nonpositive_v(self):
        with pytest.raises(ValueError):
            DriftPlusPenaltyController(v=0.0, budget_per_round=1.0)
