"""Tests for repro.core.theory (computable Lyapunov bounds)."""

import numpy as np
import pytest

from repro.core.lyapunov import BudgetQueue
from repro.core.theory import check_run_against_bounds, lyapunov_bounds


class TestLyapunovBounds:
    def test_welfare_gap_shrinks_in_v(self):
        gap_small_v = lyapunov_bounds(
            v=1.0, budget_per_round=2.0, max_payment_per_round=10.0, welfare_span=5.0
        ).welfare_gap
        gap_large_v = lyapunov_bounds(
            v=100.0, budget_per_round=2.0, max_payment_per_round=10.0, welfare_span=5.0
        ).welfare_gap
        assert gap_large_v == pytest.approx(gap_small_v / 100.0)

    def test_queue_bound_grows_in_v(self):
        def bound(v):
            return lyapunov_bounds(
                v=v, budget_per_round=2.0, max_payment_per_round=10.0,
                welfare_span=5.0, slack=0.5,
            ).queue_bound

        assert bound(100.0) > bound(1.0)
        # Asymptotically linear: doubling V roughly doubles the bound.
        assert bound(200.0) / bound(100.0) == pytest.approx(2.0, rel=0.1)

    def test_no_slack_no_queue_bound(self):
        bounds = lyapunov_bounds(
            v=10.0, budget_per_round=2.0, max_payment_per_round=10.0, welfare_span=5.0
        )
        assert bounds.queue_bound is None

    def test_drift_constant_formula(self):
        bounds = lyapunov_bounds(
            v=10.0, budget_per_round=2.0, max_payment_per_round=10.0, welfare_span=1.0
        )
        assert bounds.drift_constant == pytest.approx(0.5 * 8.0**2)

    def test_validation(self):
        with pytest.raises(ValueError):
            lyapunov_bounds(
                v=0.0, budget_per_round=1.0, max_payment_per_round=2.0, welfare_span=1.0
            )
        with pytest.raises(ValueError):
            lyapunov_bounds(
                v=1.0, budget_per_round=1.0, max_payment_per_round=2.0,
                welfare_span=-1.0,
            )


class TestCheckRunAgainstBounds:
    def make_queue(self, payments, budget=2.0):
        queue = BudgetQueue(budget_per_round=budget)
        for payment in payments:
            queue.record_spend(payment)
        return queue

    def test_consistent_run_passes(self, rng):
        payments = rng.uniform(0, 4, size=500).tolist()
        queue = self.make_queue(payments)
        bounds = lyapunov_bounds(
            v=10.0, budget_per_round=2.0, max_payment_per_round=4.0,
            welfare_span=5.0, slack=0.5,
        )
        assert check_run_against_bounds(queue, bounds) == []

    def test_spend_certificate_always_holds(self, rng):
        """The certificate is an identity of the queue recursion: any payment
        stream satisfies it."""
        for trial in range(20):
            payments = np.random.default_rng(trial).uniform(0, 10, size=200).tolist()
            queue = self.make_queue(payments, budget=1.0)
            bounds = lyapunov_bounds(
                v=5.0, budget_per_round=1.0, max_payment_per_round=10.0,
                welfare_span=2.0,
            )
            violations = check_run_against_bounds(queue, bounds)
            assert all("spend certificate" not in v for v in violations)

    def test_tiny_queue_bound_flags_violation(self, rng):
        payments = [10.0] * 100  # massive persistent overspend
        queue = self.make_queue(payments, budget=1.0)
        bounds = lyapunov_bounds(
            v=1e-6, budget_per_round=1.0, max_payment_per_round=10.0,
            welfare_span=1e-9, slack=1e6,
        )
        # queue_bound ≈ B0/1e6 ≈ tiny; average backlog is huge.
        violations = check_run_against_bounds(queue, bounds)
        assert any("queue bound" in v for v in violations)

    def test_lt_vcg_run_consistent_with_theory(self):
        """End-to-end: an actual LT-VCG run sits inside its own bounds."""
        from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
        from repro.simulation.scenarios import build_mechanism_scenario

        v, budget, k = 20.0, 2.0, 5
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=v, budget_per_round=budget, max_winners=k,
                              reserve_price=1.5)
        )
        scenario = build_mechanism_scenario(20, seed=3)
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=4
        ).run(400)
        max_payment = k * 1.5  # K winners, each capped at the reserve
        bounds = lyapunov_bounds(
            v=v, budget_per_round=budget, max_payment_per_round=max_payment,
            welfare_span=k * 3.0, slack=budget / 2,
        )
        assert check_run_against_bounds(mechanism.controller.queue, bounds) == []
        assert max(log.payment_series()) <= max_payment + 1e-9
