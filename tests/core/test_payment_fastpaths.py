"""Property tests: the fast payment engines match the retained oracles.

The payment hot path was rebuilt around analytic / incremental engines
(:func:`greedy_critical_scores`, :func:`top_k_critical_scores`,
:func:`knapsack_clarke_critical_scores`); the original general-purpose
implementations (bisection search, per-winner re-solves) are kept as
reference oracles.  These tests pin the fast paths to the oracles on
randomized instances and check the economic invariants (critical-score
bounds, allocation monotonicity at the threshold, individual rationality)
directly on the mechanism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bids import AuctionRound, Bid
from repro.core.payments import (
    clarke_critical_scores,
    critical_scores_by_search,
    greedy_critical_scores,
    knapsack_clarke_critical_scores,
    top_k_critical_scores,
)
from repro.core.vcg import SingleRoundVCGAuction
from repro.core.winner_determination import (
    SolveCache,
    WinnerDeterminationProblem,
    knapsack_objectives_without,
    solve_brute_force,
    solve_greedy,
    solve_knapsack_dp,
    solve_top_k,
)


def problem(scores, demands=None, capacity=None, max_winners=None):
    return WinnerDeterminationProblem(
        scores=tuple(scores),
        demands=None if demands is None else tuple(demands),
        capacity=capacity,
        max_winners=max_winners,
    )


def random_problem(rng, *, knapsack: bool, max_n: int = 14):
    n = int(rng.integers(2, max_n))
    return problem(
        rng.uniform(-1, 4, n).tolist(),
        demands=rng.uniform(0.1, 2.0, n).tolist() if knapsack else None,
        capacity=float(rng.uniform(0.5, 5.0)) if knapsack else None,
        max_winners=int(rng.integers(1, n + 1)) if rng.random() < 0.7 else None,
    )


class TestGreedyCriticalsMatchBisection:
    def test_knapsack_instances(self):
        rng = np.random.default_rng(11)
        for _ in range(60):
            p = random_problem(rng, knapsack=True, max_n=20)
            allocation = solve_greedy(p)
            fast = greedy_critical_scores(p, allocation)
            oracle = critical_scores_by_search(p, allocation, tolerance=1e-12)
            assert set(fast) == set(allocation.selected)
            for index in allocation.selected:
                tol = 1e-6 * max(1.0, abs(p.scores[index]))
                assert fast[index] == pytest.approx(oracle[index], abs=tol)

    def test_cardinality_instances(self):
        rng = np.random.default_rng(12)
        for _ in range(60):
            p = random_problem(rng, knapsack=False, max_n=20)
            allocation = solve_greedy(p)
            fast = greedy_critical_scores(p, allocation)
            oracle = critical_scores_by_search(p, allocation, tolerance=1e-12)
            for index in allocation.selected:
                tol = 1e-6 * max(1.0, abs(p.scores[index]))
                assert fast[index] == pytest.approx(oracle[index], abs=tol)

    @settings(max_examples=60, deadline=None)
    @given(
        scores=st.lists(st.floats(-2, 5), min_size=1, max_size=12),
        seed=st.integers(0, 1000),
    )
    def test_hypothesis_knapsack(self, scores, seed):
        rng = np.random.default_rng(seed)
        p = problem(
            scores,
            demands=rng.uniform(0.1, 2.0, len(scores)).tolist(),
            capacity=float(rng.uniform(0.5, 4.0)),
            max_winners=int(rng.integers(1, len(scores) + 1)),
        )
        allocation = solve_greedy(p)
        fast = greedy_critical_scores(p, allocation)
        oracle = critical_scores_by_search(p, allocation, tolerance=1e-12)
        for index in allocation.selected:
            tol = 1e-6 * max(1.0, abs(p.scores[index]))
            assert fast[index] == pytest.approx(oracle[index], abs=tol)

    def test_threshold_is_sharp(self):
        """Winner stays selected just above sigma and drops just below it."""
        rng = np.random.default_rng(13)
        for _ in range(40):
            p = random_problem(rng, knapsack=True)
            allocation = solve_greedy(p)
            critical = greedy_critical_scores(p, allocation)
            for index, sigma in critical.items():
                assert 0.0 <= sigma <= p.scores[index] + 1e-9
                above = solve_greedy(p.with_score(index, sigma + 1e-6))
                assert index in above.selected
                if sigma > 1e-6:
                    below = solve_greedy(p.with_score(index, sigma - 1e-6))
                    assert index not in below.selected


class TestTopKClosedForm:
    def test_matches_resolve_oracle(self):
        rng = np.random.default_rng(21)
        for _ in range(60):
            p = random_problem(rng, knapsack=False, max_n=20)
            allocation = solve_top_k(p)
            fast = top_k_critical_scores(p, allocation)
            oracle = clarke_critical_scores(p, allocation, solver=solve_top_k)
            for index in allocation.selected:
                assert fast[index] == pytest.approx(oracle[index], abs=1e-9)

    def test_rejects_knapsack(self):
        p = problem([1.0], demands=[1.0], capacity=1.0)
        with pytest.raises(ValueError):
            top_k_critical_scores(p, solve_greedy(p))

    def test_default_clarke_dispatch_uses_closed_form(self):
        p = problem([5.0, 4.0, 3.0], max_winners=2)
        allocation = solve_top_k(p)
        assert clarke_critical_scores(p, allocation) == top_k_critical_scores(
            p, allocation
        )


class TestKnapsackPrefixSuffixClarke:
    def test_objectives_without_match_full_resolve(self):
        rng = np.random.default_rng(31)
        for _ in range(40):
            p = random_problem(rng, knapsack=True)
            resolution = int(rng.choice([60, 250, 1000]))
            allocation = solve_knapsack_dp(p, resolution=resolution)
            fast = knapsack_objectives_without(
                p, allocation.selected, resolution=resolution
            )
            for index in allocation.selected:
                ref = solve_knapsack_dp(p.without(index), resolution=resolution)
                assert fast[index] == pytest.approx(ref.objective, abs=1e-9)

    def test_critical_scores_match_resolve_oracle(self):
        rng = np.random.default_rng(32)
        for _ in range(40):
            p = random_problem(rng, knapsack=True)
            allocation = solve_knapsack_dp(p)
            fast = knapsack_clarke_critical_scores(p, allocation)
            oracle = clarke_critical_scores(
                p, allocation, solver=solve_knapsack_dp
            )
            for index in allocation.selected:
                assert fast[index] == pytest.approx(oracle[index], abs=1e-9)

    def test_default_clarke_dispatch_uses_prefix_suffix_in_dp_regime(self):
        """clarke_critical_scores with no solver mirrors the exact-dispatch
        rule: DP-regime knapsack instances go through the prefix/suffix
        engine."""
        rng = np.random.default_rng(35)
        n = 12  # > _AUTO_BRUTE_FORCE_LIMIT positive candidates
        p = problem(
            rng.uniform(0.5, 4, n).tolist(),
            demands=rng.uniform(0.3, 1.5, n).tolist(),
            capacity=3.0,
        )
        allocation = solve_knapsack_dp(p)
        assert clarke_critical_scores(p, allocation) == pytest.approx(
            knapsack_clarke_critical_scores(p, allocation)
        )

    def test_bounds_hold(self):
        rng = np.random.default_rng(33)
        for _ in range(25):
            p = random_problem(rng, knapsack=True)
            allocation = solve_knapsack_dp(p)
            for index, sigma in knapsack_clarke_critical_scores(p, allocation).items():
                assert 0.0 <= sigma <= p.scores[index] + 1e-9

    def test_matches_brute_force_on_integer_grids(self):
        """On integer demands the DP grid is exact, so the prefix/suffix
        engine reproduces true Clarke pivots."""
        rng = np.random.default_rng(34)
        for _ in range(25):
            n = int(rng.integers(2, 9))
            capacity = float(rng.integers(3, 9))
            p = problem(
                rng.uniform(0.1, 4, n).tolist(),
                demands=[float(d) for d in rng.integers(1, 4, n)],
                capacity=capacity,
            )
            allocation = solve_brute_force(p)
            dp_allocation = solve_knapsack_dp(p, resolution=int(capacity))
            assert dp_allocation.objective == pytest.approx(allocation.objective)
            fast = knapsack_clarke_critical_scores(
                p, dp_allocation, resolution=int(capacity)
            )
            oracle = clarke_critical_scores(p, allocation, solver=solve_brute_force)
            for index in set(fast) & set(oracle):
                assert fast[index] == pytest.approx(oracle[index], abs=1e-9)


class TestMechanismInvariants:
    def _round(self, rng, n):
        bids = tuple(
            Bid(client_id=i, cost=float(rng.uniform(0.1, 2.0)), data_size=100)
            for i in range(n)
        )
        values = {i: float(rng.uniform(0.2, 3.0)) for i in range(n)}
        return AuctionRound(index=0, bids=bids, values=values)

    @pytest.mark.parametrize("wd_method", ["exact", "greedy", "dp"])
    def test_individual_rationality(self, wd_method):
        rng = np.random.default_rng(41)
        for _ in range(15):
            n = int(rng.integers(3, 20))
            auction = SingleRoundVCGAuction(
                value_weight=2.0,
                cost_weight=1.5,
                max_winners=int(rng.integers(1, 6)),
                demands={i: float(rng.uniform(0.5, 2.0)) for i in range(n)},
                capacity=4.0,
                wd_method=wd_method,
            )
            auction_round = self._round(rng, n)
            result = auction.run(auction_round)
            for client_id, payment in result.payments.items():
                assert payment >= auction_round.bid_of(client_id).cost - 1e-9

    def test_greedy_payments_match_bisection_engine_end_to_end(self):
        """The auction's greedy payments equal what the bisection oracle
        would have produced (modulo bisection tolerance)."""
        rng = np.random.default_rng(42)
        for _ in range(10):
            n = int(rng.integers(3, 16))
            auction = SingleRoundVCGAuction(
                value_weight=2.0,
                cost_weight=1.5,
                max_winners=5,
                demands={i: float(rng.uniform(0.5, 2.0)) for i in range(n)},
                capacity=4.0,
                wd_method="greedy",
            )
            auction_round = self._round(rng, n)
            result = auction.run(auction_round)
            problem_, ids = auction.build_problem(auction_round)
            allocation = solve_greedy(problem_)
            oracle = critical_scores_by_search(problem_, allocation, tolerance=1e-12)
            for index in allocation.selected:
                client_id = ids[index]
                weight = auction.weight_of(client_id, auction_round.values[client_id])
                expected = (weight - oracle[index]) / auction.cost_weight
                expected = max(expected, auction_round.bid_of(client_id).cost)
                assert result.payments[client_id] == pytest.approx(expected, abs=1e-5)


class TestSolveCache:
    def test_hits_on_repeat_and_respects_method(self):
        cache = SolveCache()
        p = problem([3.0, 2.0, 1.0], max_winners=2)
        first = cache.solve(p, "top-k")
        again = cache.solve(p, "top-k")
        assert first is again
        assert cache.hits == 1 and cache.misses == 1
        # An equal-valued but distinct problem object still hits.
        q = problem([3.0, 2.0, 1.0], max_winners=2)
        assert cache.solve(q, "top-k") is first
        # A different method is a different entry.
        cache.solve(p, "greedy")
        assert cache.misses == 2

    def test_eviction_bounds_size(self):
        cache = SolveCache(maxsize=4)
        for k in range(10):
            cache.solve(problem([float(k + 1)]), "top-k")
        assert len(cache) == 4

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            SolveCache(maxsize=0)


class TestDerivedProblemsStayCanonical:
    """without()/with_score() skip validation — their results must still be
    value-equal (and hash-equal) to independently constructed problems, or
    the solve cache would miss."""

    def test_without_equals_fresh_construction(self):
        p = problem([1.5, 2.5, 3.5], demands=[1.0, 2.0, 3.0], capacity=4.0,
                    max_winners=2)
        derived = p.without(1)
        fresh = problem([1.5, 3.5], demands=[1.0, 3.0], capacity=4.0, max_winners=2)
        assert derived == fresh
        assert hash(derived) == hash(fresh)

    def test_with_score_equals_fresh_construction(self):
        p = problem([1.5, 2.5], max_winners=1)
        derived = p.with_score(0, 9.0)
        fresh = problem([9.0, 2.5], max_winners=1)
        assert derived == fresh
        assert hash(derived) == hash(fresh)

    def test_with_score_rejects_nonfinite(self):
        p = problem([1.0])
        with pytest.raises(ValueError):
            p.with_score(0, float("nan"))
