"""Extended property-based coverage of the single-round auction.

These extend the LT-VCG properties file with the auction features added
later: sustainability offsets, knapsack constraints, and reserve prices —
each combined with both winner-determination methods and checked for the
full property triple (truthfulness, IR, monotonicity).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bids import AuctionRound, Bid, RoundOutcome
from repro.core.mechanism import Mechanism
from repro.core.properties import (
    verify_individual_rationality,
    verify_monotonicity,
    verify_truthfulness,
)
from repro.core.vcg import SingleRoundVCGAuction


class _AuctionAsMechanism(Mechanism):
    """Adapter: a (fresh, stateless) auction as a Mechanism for the verifiers."""

    name = "single-round"

    def __init__(self, **auction_kwargs) -> None:
        self.auction_kwargs = auction_kwargs

    def run_round(self, auction_round: AuctionRound) -> RoundOutcome:
        result = SingleRoundVCGAuction(**self.auction_kwargs).run(auction_round)
        return RoundOutcome(
            round_index=auction_round.index,
            selected=result.selected,
            payments=dict(result.payments),
        )


def build_instance(costs, seed, *, with_demands):
    rng = np.random.default_rng(seed)
    n = len(costs)
    bids = tuple(
        Bid(client_id=i, cost=float(costs[i]), data_size=int(rng.integers(10, 400)))
        for i in range(n)
    )
    values = {i: float(rng.uniform(0.2, 3.0)) for i in range(n)}
    auction_round = AuctionRound(index=0, bids=bids, values=values)
    kwargs = {
        "value_weight": float(rng.uniform(1.0, 30.0)),
        "cost_weight": float(rng.uniform(1.0, 40.0)),
        "max_winners": int(rng.integers(1, n + 1)),
    }
    if rng.random() < 0.5:
        kwargs["offsets"] = {i: float(rng.uniform(0.0, 2.0)) for i in range(n)}
    if with_demands:
        kwargs["demands"] = {i: float(rng.uniform(0.2, 1.5)) for i in range(n)}
        kwargs["capacity"] = float(rng.uniform(1.0, 4.0))
    true_costs = {i: float(costs[i]) for i in range(n)}
    return auction_round, true_costs, kwargs


costs_strategy = st.lists(st.floats(0.05, 3.0, allow_nan=False), min_size=2, max_size=7)


@settings(max_examples=30, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_offsets_preserve_truthfulness(costs, seed):
    auction_round, true_costs, kwargs = build_instance(costs, seed, with_demands=False)
    factory = lambda: _AuctionAsMechanism(**kwargs)  # noqa: E731
    report = verify_truthfulness(
        factory, auction_round, true_costs, deviation_factors=(0.4, 0.8, 1.3, 2.5)
    )
    assert report.is_truthful, report.violations()
    outcome = factory().run_round(auction_round)
    assert verify_individual_rationality(outcome, auction_round) == []


@settings(max_examples=25, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_knapsack_exact_truthful(costs, seed):
    auction_round, true_costs, kwargs = build_instance(costs, seed, with_demands=True)
    kwargs["wd_method"] = "exact"
    factory = lambda: _AuctionAsMechanism(**kwargs)  # noqa: E731
    report = verify_truthfulness(
        factory, auction_round, true_costs, deviation_factors=(0.5, 1.5, 3.0)
    )
    assert report.is_truthful, report.violations()


@settings(max_examples=25, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_knapsack_greedy_monotone_and_ir(costs, seed):
    auction_round, _, kwargs = build_instance(costs, seed, with_demands=True)
    kwargs["wd_method"] = "greedy"
    factory = lambda: _AuctionAsMechanism(**kwargs)  # noqa: E731
    assert verify_monotonicity(factory, auction_round) == []
    outcome = factory().run_round(auction_round)
    assert verify_individual_rationality(outcome, auction_round) == []


@settings(max_examples=25, deadline=None)
@given(
    costs=costs_strategy,
    seed=st.integers(0, 10_000),
    reserve=st.floats(0.2, 2.5, allow_nan=False),
)
def test_reserve_preserves_all_properties(costs, seed, reserve):
    auction_round, true_costs, kwargs = build_instance(costs, seed, with_demands=False)
    kwargs["reserve_price"] = reserve
    factory = lambda: _AuctionAsMechanism(**kwargs)  # noqa: E731
    report = verify_truthfulness(
        factory, auction_round, true_costs, deviation_factors=(0.5, 1.5, 3.0)
    )
    assert report.is_truthful, report.violations()
    outcome = factory().run_round(auction_round)
    assert verify_individual_rationality(outcome, auction_round) == []
    # No payment ever exceeds the reserve.
    for payment in outcome.payments.values():
        assert payment <= reserve + 1e-9


@settings(max_examples=30, deadline=None)
@given(costs=costs_strategy, seed=st.integers(0, 10_000))
def test_payments_bounded_by_weighted_value(costs, seed):
    """A winner is never paid more than w_i / cost_weight: its score must be
    non-negative at its critical bid."""
    auction_round, _, kwargs = build_instance(costs, seed, with_demands=False)
    auction = SingleRoundVCGAuction(**kwargs)
    result = auction.run(auction_round)
    for client_id, payment in result.payments.items():
        weight = auction.weight_of(client_id, auction_round.values[client_id])
        assert payment <= weight / auction.cost_weight + 1e-6
