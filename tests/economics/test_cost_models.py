"""Tests for repro.economics.cost_models."""

import numpy as np
import pytest

from repro.economics.cost_models import (
    DEVICE_CLASSES,
    CostProfile,
    LinearCostModel,
    sample_cost_profiles,
)


class TestCostProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            CostProfile(compute_unit_cost=-1.0, upload_cost=0.0, energy_per_round=0.0)
        with pytest.raises(ValueError):
            CostProfile(compute_unit_cost=0.0, upload_cost=-0.1, energy_per_round=0.0)

    def test_frozen(self):
        profile = CostProfile(0.001, 0.05, 1.0)
        with pytest.raises(AttributeError):
            profile.upload_cost = 1.0


class TestLinearCostModel:
    def test_round_cost_formula(self):
        model = LinearCostModel(CostProfile(0.002, 0.1, 1.0))
        cost = model.round_cost(local_steps=5, batch_size=32)
        assert cost == pytest.approx(0.002 * 160 + 0.1)

    def test_cost_monotone_in_work(self):
        model = LinearCostModel(CostProfile(0.002, 0.1, 1.0))
        assert model.round_cost(local_steps=10, batch_size=32) > model.round_cost(
            local_steps=5, batch_size=32
        )

    def test_rejects_nonpositive_work(self):
        model = LinearCostModel(CostProfile(0.002, 0.1, 1.0))
        with pytest.raises(ValueError):
            model.round_cost(local_steps=0, batch_size=32)


class TestSampleCostProfiles:
    def test_count_and_ranges(self, rng):
        profiles = sample_cost_profiles(50, rng)
        assert len(profiles) == 50
        for profile in profiles:
            ranges = DEVICE_CLASSES[profile.device_class]
            low, high = ranges["compute_unit_cost"]
            assert low <= profile.compute_unit_cost <= high

    def test_class_weights_respected(self, rng):
        profiles = sample_cost_profiles(
            200, rng, class_weights={"edge-box": 1.0}
        )
        assert all(p.device_class == "edge-box" for p in profiles)

    def test_unknown_class_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_cost_profiles(5, rng, class_weights={"mainframe": 1.0})

    def test_deterministic_given_rng(self):
        a = sample_cost_profiles(10, np.random.default_rng(4))
        b = sample_cost_profiles(10, np.random.default_rng(4))
        assert a == b

    def test_budget_devices_cost_more_per_work(self, rng):
        """The class ranges encode: budget phones have higher unit cost."""
        budget_low = DEVICE_CLASSES["budget-phone"]["compute_unit_cost"][0]
        edge_high = DEVICE_CLASSES["edge-box"]["compute_unit_cost"][1]
        assert budget_low > edge_high
