"""Tests for repro.economics.bidding."""

import numpy as np
import pytest

from repro.economics.bidding import (
    AdaptiveStrategy,
    BidContext,
    JitterStrategy,
    ScaledStrategy,
    TruthfulStrategy,
)


def context(cost=1.0, round_index=0) -> BidContext:
    return BidContext(round_index=round_index, true_cost=cost)


class TestTruthfulStrategy:
    def test_bids_true_cost(self, rng):
        strategy = TruthfulStrategy()
        assert strategy.bid(context(1.7), rng) == 1.7


class TestScaledStrategy:
    def test_constant_markup(self, rng):
        strategy = ScaledStrategy(1.5)
        assert strategy.bid(context(2.0), rng) == pytest.approx(3.0)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ScaledStrategy(0.0)


class TestJitterStrategy:
    def test_zero_sigma_is_truthful(self, rng):
        strategy = JitterStrategy(0.0)
        assert strategy.bid(context(1.0), rng) == pytest.approx(1.0)

    def test_jitter_is_multiplicative_and_positive(self, rng):
        strategy = JitterStrategy(0.3)
        bids = [strategy.bid(context(1.0), rng) for _ in range(200)]
        assert all(b > 0 for b in bids)
        assert np.std(bids) > 0.1

    def test_median_near_truth(self, rng):
        strategy = JitterStrategy(0.2)
        bids = [strategy.bid(context(2.0), rng) for _ in range(2000)]
        assert np.median(bids) == pytest.approx(2.0, rel=0.1)


class TestAdaptiveStrategy:
    def test_initial_distribution_uniform(self):
        strategy = AdaptiveStrategy(factors=(1.0, 2.0))
        assert np.allclose(strategy.distribution(), [0.5, 0.5])

    def test_learns_profitable_markup_against_pay_as_bid(self, rng):
        """Against a pay-as-bid rule that accepts bids up to 2x cost, the
        learner should shift weight toward the largest accepted markup."""
        strategy = AdaptiveStrategy(factors=(1.0, 1.8, 3.0), learning_rate=0.5)
        for t in range(800):
            bid = strategy.bid(context(1.0, t), rng)
            accepted = bid <= 2.0
            strategy.observe(
                context(1.0, t), selected=accepted, payment=bid if accepted else 0.0
            )
        assert strategy.expected_factor() > 1.5

    def test_converges_to_truthful_when_payment_fixed(self, rng):
        """Against a truthful mechanism (payment independent of bid, win iff
        bid below the critical price), overbidding past the price loses;
        underbidding gains nothing — 1.0 and below tie, high markups lose."""
        strategy = AdaptiveStrategy(factors=(1.0, 2.5), learning_rate=0.5)
        critical_price = 1.5
        for t in range(600):
            bid = strategy.bid(context(1.0, t), rng)
            wins = bid <= critical_price
            strategy.observe(
                context(1.0, t),
                selected=wins,
                payment=critical_price if wins else 0.0,
            )
        distribution = strategy.distribution()
        assert distribution[0] > 0.95  # mass on the truthful factor

    def test_reset(self, rng):
        strategy = AdaptiveStrategy(factors=(1.0, 2.0), learning_rate=1.0)
        for t in range(50):
            bid = strategy.bid(context(1.0, t), rng)
            strategy.observe(context(1.0, t), selected=True, payment=bid)
        strategy.reset()
        assert np.allclose(strategy.distribution(), [0.5, 0.5])

    def test_observe_without_bid_is_noop(self):
        strategy = AdaptiveStrategy()
        strategy.observe(context(), selected=True, payment=5.0)  # no crash

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveStrategy(factors=())
        with pytest.raises(ValueError):
            AdaptiveStrategy(factors=(0.0, 1.0))
