"""Tests for repro.economics.calibration."""

import numpy as np
import pytest

from repro.economics.calibration import (
    premium_estimate,
    suggest_budget,
    suggest_posted_price,
    suggest_reserve_price,
)
from repro.economics.client_profile import build_population


@pytest.fixture
def population():
    return build_population(30, seed=5, energy_constrained=False)


class TestSuggestBudget:
    def test_scales_with_winners(self, population):
        assert suggest_budget(population, 10) == pytest.approx(
            2 * suggest_budget(population, 5)
        )

    def test_premium_headroom(self, population):
        lean = suggest_budget(population, 5, premium_factor=1.0)
        cushioned = suggest_budget(population, 5, premium_factor=1.5)
        assert cushioned == pytest.approx(1.5 * lean)

    def test_validation(self, population):
        with pytest.raises(ValueError):
            suggest_budget(population, 0)
        with pytest.raises(ValueError):
            suggest_budget([], 3)


class TestSuggestReservePrice:
    def test_quantile_position(self, population):
        reserve = suggest_reserve_price(population, quantile=0.9)
        costs = sorted(c.true_cost() for c in population)
        below = sum(1 for c in costs if c <= reserve)
        assert below >= int(0.85 * len(costs))

    def test_monotone_in_quantile(self, population):
        assert suggest_reserve_price(population, quantile=0.5) <= suggest_reserve_price(
            population, quantile=0.95
        )

    def test_validation(self, population):
        with pytest.raises(ValueError):
            suggest_reserve_price(population, quantile=1.5)


class TestSuggestPostedPrice:
    def test_exactly_k_acceptors(self, population):
        price = suggest_posted_price(population, expected_acceptors=10)
        acceptors = sum(1 for c in population if c.true_cost() <= price)
        assert acceptors >= 10  # ties can only add acceptors

    def test_bounds(self, population):
        with pytest.raises(ValueError):
            suggest_posted_price(population, 0)
        with pytest.raises(ValueError):
            suggest_posted_price(population, len(population) + 1)

    def test_price_is_a_cost(self, population):
        price = suggest_posted_price(population, 7)
        assert any(abs(c.true_cost() - price) < 1e-12 for c in population)


class TestPremiumEstimate:
    def test_matches_manual(self):
        from repro.simulation.events import EventLog, RoundRecord

        log = EventLog()
        log.record(
            RoundRecord(
                round_index=0,
                available=(0,),
                bids={0: 1.0},
                true_costs={0: 1.0},
                values={0: 2.0},
                selected=(0,),
                payments={0: 1.5},
            )
        )
        assert premium_estimate(log) == pytest.approx(0.5)

    def test_empty_log(self):
        from repro.simulation.events import EventLog

        assert premium_estimate(EventLog()) == 0.0

    def test_end_to_end_calibration_loop(self, population):
        """Budget suggested from the premium of a pilot run is compliant."""
        from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
        from repro.analysis.budget import budget_report
        from repro.simulation.scenarios import build_mechanism_scenario

        scenario = build_mechanism_scenario(20, seed=9)
        pilot_mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=20.0, budget_per_round=100.0, max_winners=5)
        )
        pilot = SimulationRunner(
            pilot_mechanism, scenario.clients, scenario.valuation, seed=1
        ).run(100)
        premium = premium_estimate(pilot)

        budget = suggest_budget(
            scenario.clients, 5, premium_factor=1.0 + premium
        )
        scenario2 = build_mechanism_scenario(20, seed=9)
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=20.0, budget_per_round=budget, max_winners=5)
        )
        log = SimulationRunner(
            mechanism, scenario2.clients, scenario2.valuation, seed=1
        ).run(300)
        report = budget_report(log, budget)
        assert report.final_overspend_ratio <= 1.1
