"""Tests for repro.economics.data_value and repro.economics.client_profile."""

import numpy as np
import pytest

from repro.economics.bidding import ScaledStrategy, TruthfulStrategy
from repro.economics.client_profile import EconomicClient, build_population
from repro.economics.cost_models import CostProfile, LinearCostModel
from repro.economics.data_value import data_quality, label_entropy
from repro.economics.energy import Battery, BernoulliHarvest


class TestDataValue:
    def test_entropy_of_uniform(self):
        labels = np.repeat(np.arange(4), 25)
        assert label_entropy(labels, 4) == pytest.approx(np.log(4))

    def test_entropy_of_single_class(self):
        assert label_entropy(np.zeros(50, dtype=int), 4) == 0.0

    def test_quality_normalised(self):
        uniform = np.repeat(np.arange(5), 10)
        assert data_quality(uniform, 5) == pytest.approx(1.0)
        assert data_quality(np.zeros(10, dtype=int), 5) == 0.0

    def test_quality_monotone_in_diversity(self):
        two_class = np.array([0] * 25 + [1] * 25)
        skewed = np.array([0] * 45 + [1] * 5)
        assert data_quality(two_class, 4) > data_quality(skewed, 4)

    def test_empty_labels(self):
        assert label_entropy(np.array([], dtype=int), 3) == 0.0

    def test_rejects_one_class_universe(self):
        with pytest.raises(ValueError):
            data_quality(np.zeros(5, dtype=int), 1)


def make_client(battery=None, harvest=None, strategy=None, seed=0):
    return EconomicClient(
        client_id=0,
        cost_model=LinearCostModel(CostProfile(0.002, 0.1, energy_per_round=1.0)),
        strategy=strategy or TruthfulStrategy(),
        declared_size=100,
        declared_quality=0.8,
        local_steps=5,
        batch_size=32,
        rng=np.random.default_rng(seed),
        battery=battery,
        harvest=harvest,
    )


class TestEconomicClient:
    def test_true_cost(self):
        client = make_client()
        assert client.true_cost() == pytest.approx(0.002 * 160 + 0.1)

    def test_mains_powered_always_available(self):
        assert make_client().is_available()

    def test_battery_gates_availability(self):
        client = make_client(battery=Battery(2.0, initial=0.5))
        assert not client.is_available()  # needs 1.0 energy
        client.battery.charge(1.0)
        assert client.is_available()

    def test_make_bid_carries_declarations(self):
        bid = make_client().make_bid(0)
        assert bid.data_size == 100
        assert bid.quality == 0.8
        assert bid.cost == pytest.approx(make_client().true_cost())

    def test_strategic_bid(self):
        client = make_client(strategy=ScaledStrategy(2.0))
        assert client.make_bid(0).cost == pytest.approx(2 * client.true_cost())

    def test_post_round_drains_and_harvests(self):
        battery = Battery(5.0, initial=2.0)
        harvest = BernoulliHarvest(rate=1.0, amount=0.5)
        client = make_client(battery=battery, harvest=harvest)
        client.post_round(0, selected=True, payment=1.0)
        # drained 1.0, harvested 0.5
        assert battery.level == pytest.approx(1.5)

    def test_post_round_unselected_only_harvests(self):
        battery = Battery(5.0, initial=2.0)
        harvest = BernoulliHarvest(rate=1.0, amount=0.5)
        client = make_client(battery=battery, harvest=harvest)
        client.post_round(0, selected=False, payment=0.0)
        assert battery.level == pytest.approx(2.5)


class TestBuildPopulation:
    def test_reproducible(self):
        a = build_population(10, seed=3)
        b = build_population(10, seed=3)
        assert [c.true_cost() for c in a] == [c.true_cost() for c in b]
        assert [c.declared_size for c in a] == [c.declared_size for c in b]

    def test_heterogeneous_costs(self):
        clients = build_population(30, seed=0)
        costs = {round(c.true_cost(), 6) for c in clients}
        assert len(costs) > 20

    def test_energy_constrained_flag(self):
        constrained = build_population(5, seed=0, energy_constrained=True)
        mains = build_population(5, seed=0, energy_constrained=False)
        assert all(c.battery is not None for c in constrained)
        assert all(c.battery is None for c in mains)

    def test_declared_lists_respected(self):
        clients = build_population(
            3, seed=0, declared_sizes=[10, 20, 30], declared_qualities=[0.1, 0.2, 0.3]
        )
        assert [c.declared_size for c in clients] == [10, 20, 30]

    def test_declared_list_length_checked(self):
        with pytest.raises(ValueError):
            build_population(3, seed=0, declared_sizes=[10])

    def test_strategy_factory_applied(self):
        clients = build_population(
            4, seed=0, strategy_factory=lambda cid, rng: ScaledStrategy(1.0 + cid)
        )
        assert isinstance(clients[2].strategy, ScaledStrategy)
        assert clients[2].strategy.factor == 3.0
