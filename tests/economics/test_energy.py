"""Tests for repro.economics.energy."""

import numpy as np
import pytest

from repro.economics.energy import (
    Battery,
    BernoulliHarvest,
    DiurnalHarvest,
    MarkovOnOffHarvest,
)


class TestBattery:
    def test_starts_full_by_default(self):
        assert Battery(5.0).level == 5.0

    def test_drain_and_charge(self):
        battery = Battery(10.0, initial=4.0)
        battery.drain(3.0)
        assert battery.level == pytest.approx(1.0)
        stored = battery.charge(100.0)
        assert battery.level == 10.0
        assert stored == pytest.approx(9.0)  # clipped at capacity

    def test_drain_checks_balance(self):
        battery = Battery(5.0, initial=1.0)
        assert not battery.can_afford(2.0)
        with pytest.raises(ValueError):
            battery.drain(2.0)

    def test_never_negative_never_overfull(self, rng):
        battery = Battery(3.0, initial=1.5)
        for _ in range(500):
            amount = float(rng.uniform(0, 1))
            if rng.random() < 0.5 and battery.can_afford(amount):
                battery.drain(amount)
            else:
                battery.charge(amount)
            assert 0.0 <= battery.level <= 3.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(0.0)
        with pytest.raises(ValueError):
            Battery(2.0, initial=3.0)
        with pytest.raises(ValueError):
            Battery(2.0, initial=-1.0)


class TestBernoulliHarvest:
    def test_empirical_rate_matches(self, rng):
        harvest = BernoulliHarvest(rate=0.3, amount=2.0)
        draws = [harvest.step(t, rng) for t in range(5000)]
        assert np.mean(draws) == pytest.approx(harvest.mean_rate(), rel=0.1)

    def test_only_two_outcomes(self, rng):
        harvest = BernoulliHarvest(rate=0.5, amount=1.5)
        assert set(harvest.step(t, rng) for t in range(100)) <= {0.0, 1.5}

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliHarvest(rate=1.5, amount=1.0)
        with pytest.raises(ValueError):
            BernoulliHarvest(rate=0.5, amount=-1.0)


class TestMarkovOnOffHarvest:
    def test_empirical_rate_matches_stationary(self, rng):
        harvest = MarkovOnOffHarvest(amount=1.0, p_on_off=0.2, p_off_on=0.3)
        draws = [harvest.step(t, rng) for t in range(20000)]
        assert np.mean(draws) == pytest.approx(harvest.mean_rate(), rel=0.1)

    def test_burstiness(self, rng):
        """Sticky chains produce longer runs than i.i.d. draws."""
        harvest = MarkovOnOffHarvest(amount=1.0, p_on_off=0.05, p_off_on=0.05)
        draws = np.array([harvest.step(t, rng) for t in range(5000)]) > 0
        switches = int(np.sum(draws[1:] != draws[:-1]))
        assert switches < 1000  # i.i.d. at p=0.5 would switch ~2500 times

    def test_reset_restores_start_state(self, rng):
        harvest = MarkovOnOffHarvest(
            amount=1.0, p_on_off=0.5, p_off_on=0.5, start_on=True
        )
        for t in range(10):
            harvest.step(t, rng)
        harvest.reset()
        assert harvest._on is True

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovOnOffHarvest(amount=1.0, p_on_off=0.0, p_off_on=0.0)


class TestDiurnalHarvest:
    def test_periodicity(self, rng):
        harvest = DiurnalHarvest(peak=2.0, period=24)
        day_one = [harvest.step(t, rng) for t in range(24)]
        day_two = [harvest.step(t + 24, rng) for t in range(24)]
        assert np.allclose(day_one, day_two)

    def test_night_is_zero(self, rng):
        harvest = DiurnalHarvest(peak=2.0, period=24)
        # Second half of the sine period is negative, clipped to 0.
        night = [harvest.step(t, rng) for t in range(13, 23)]
        assert all(v == 0.0 for v in night)

    def test_mean_rate(self, rng):
        harvest = DiurnalHarvest(peak=np.pi, period=1000)
        draws = [harvest.step(t, rng) for t in range(1000)]
        assert np.mean(draws) == pytest.approx(harvest.mean_rate(), rel=0.05)

    def test_noise_keeps_nonnegative(self, rng):
        harvest = DiurnalHarvest(peak=0.1, period=10, noise=1.0)
        assert all(harvest.step(t, rng) >= 0.0 for t in range(200))
