"""Tests for repro.simulation.environment and repro.simulation.network."""

import numpy as np
import pytest

from repro.simulation.environment import AlwaysAvailable, OnlineAvailability
from repro.simulation.network import NetworkModel


class TestAlwaysAvailable:
    def test_always_true(self, rng):
        model = AlwaysAvailable()
        assert all(model.is_present(t, rng) for t in range(100))


class TestOnlineAvailability:
    def test_join_window(self, rng):
        model = OnlineAvailability(join_round=5)
        assert not model.is_present(4, rng)
        assert model.is_present(5, rng)

    def test_leave_window(self, rng):
        model = OnlineAvailability(leave_round=10)
        assert model.is_present(9, rng)
        assert not model.is_present(10, rng)

    def test_dropout_rate(self, rng):
        model = OnlineAvailability(dropout_prob=0.3)
        presence = [model.is_present(t, rng) for t in range(5000)]
        assert np.mean(presence) == pytest.approx(0.7, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineAvailability(join_round=-1)
        with pytest.raises(ValueError):
            OnlineAvailability(join_round=5, leave_round=5)
        with pytest.raises(ValueError):
            OnlineAvailability(dropout_prob=1.5)


class TestNetworkModel:
    def make(self):
        return NetworkModel(
            compute_rates={0: 1000.0, 1: 100.0},
            bandwidths={0: 10000.0, 1: 10000.0},
            model_size=1000,
            server_overhead=0.1,
        )

    def test_latency_formula(self):
        model = self.make()
        assert model.client_latency(0, 500.0) == pytest.approx(0.5 + 0.1)

    def test_round_duration_is_straggler_bound(self):
        model = self.make()
        duration = model.round_duration((0, 1), work=100.0)
        slow = model.client_latency(1, 100.0)
        assert duration == pytest.approx(0.1 + slow)

    def test_empty_round_is_overhead_only(self):
        assert self.make().round_duration((), 100.0) == pytest.approx(0.1)

    def test_unknown_client(self):
        with pytest.raises(KeyError):
            self.make().client_latency(9, 1.0)

    def test_mismatched_coverage(self):
        with pytest.raises(ValueError):
            NetworkModel({0: 1.0}, {1: 1.0}, model_size=10)

    def test_sample_is_reproducible(self):
        a = NetworkModel.sample([0, 1, 2], 100, np.random.default_rng(2))
        b = NetworkModel.sample([0, 1, 2], 100, np.random.default_rng(2))
        assert a.compute_rates == b.compute_rates
        assert a.bandwidths == b.bandwidths
