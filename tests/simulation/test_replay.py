"""Tests for repro.simulation.replay (event-log persistence)."""

import numpy as np
import pytest

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.welfare import welfare_summary
from repro.simulation.replay import (
    event_log_from_dict,
    event_log_to_dict,
    load_event_log,
    save_event_log,
)
from repro.simulation.scenarios import build_fl_scenario, build_mechanism_scenario


def make_log(rounds=20, fl=False):
    mechanism = LongTermVCGMechanism(
        LongTermVCGConfig(v=20.0, budget_per_round=2.0, max_winners=4)
    )
    if fl:
        scenario = build_fl_scenario(8, seed=2, num_samples=800, eval_every=7)
    else:
        scenario = build_mechanism_scenario(8, seed=2, energy_constrained=True)
    runner = SimulationRunner(
        mechanism, scenario.clients, scenario.valuation, fl=scenario.fl, seed=3
    )
    return runner.run(rounds)


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        log = make_log()
        rebuilt = event_log_from_dict(event_log_to_dict(log))
        assert len(rebuilt) == len(log)
        for original, restored in zip(log, rebuilt):
            assert original.round_index == restored.round_index
            assert original.selected == restored.selected
            assert original.payments == restored.payments
            assert original.true_costs == restored.true_costs
            assert original.battery_levels == restored.battery_levels

    def test_file_round_trip(self, tmp_path):
        log = make_log()
        path = tmp_path / "log.json"
        save_event_log(path, log)
        restored = load_event_log(path)
        assert welfare_summary(restored) == welfare_summary(log)
        assert restored.payment_series() == log.payment_series()

    def test_nan_accuracy_round_trip(self, tmp_path):
        log = make_log(rounds=10, fl=True)
        path = tmp_path / "log.json"
        save_event_log(path, log)
        restored = load_event_log(path)
        original_xs, original_ys = log.accuracy_series()
        restored_xs, restored_ys = restored.accuracy_series()
        assert original_xs == restored_xs
        assert np.allclose(original_ys, restored_ys)

    def test_keys_restored_as_ints(self, tmp_path):
        log = make_log(rounds=5)
        path = tmp_path / "log.json"
        save_event_log(path, log)
        restored = load_event_log(path)
        assert all(isinstance(k, int) for k in restored[0].bids)

    def test_version_check(self):
        with pytest.raises(ValueError, match="format version"):
            event_log_from_dict({"format_version": 99, "rounds": []})

    def test_double_round_trip_is_byte_stable(self, tmp_path):
        # save -> load -> save must produce identical bytes: the archived
        # form is a fixed point, so re-archiving a restored log (as the
        # orchestration layer may when copying campaigns) changes nothing.
        log = make_log(rounds=10, fl=True)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_event_log(first, log)
        save_event_log(second, load_event_log(first))
        assert first.read_bytes() == second.read_bytes()

    def test_failed_deliveries_and_diagnostics_round_trip(self, tmp_path):
        from repro.simulation.events import EventLog, RoundRecord

        log = EventLog()
        log.record(
            RoundRecord(
                round_index=0,
                available=(1, 2),
                bids={1: 0.5, 2: 0.7},
                true_costs={1: 0.4, 2: 0.6},
                values={1: 2.0, 2: 1.5},
                selected=(1,),
                payments={1: 0.9},
                failed=(2,),
                diagnostics={"queue_backlog": 1.25, "committed_payment": 1.8},
            )
        )
        path = tmp_path / "log.json"
        save_event_log(path, log)
        restored = load_event_log(path)
        assert restored[0].failed == (2,)
        assert restored[0].diagnostics == {
            "queue_backlog": 1.25,
            "committed_payment": 1.8,
        }

    def test_analysis_runs_on_restored_log(self, tmp_path):
        from repro.analysis.budget import budget_report

        log = make_log()
        path = tmp_path / "log.json"
        save_event_log(path, log)
        restored = load_event_log(path)
        report = budget_report(restored, 2.0)
        assert report.rounds == len(log)
