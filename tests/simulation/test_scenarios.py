"""Tests for repro.simulation.scenarios."""

import pytest

from repro.core.valuation import StalenessAwareValuation
from repro.simulation.scenarios import (
    build_fl_scenario,
    build_mechanism_scenario,
    icdcs_defaults,
)


class TestDefaults:
    def test_canonical_keys_present(self):
        defaults = icdcs_defaults()
        for key in ("num_clients", "max_winners", "v", "budget_per_round"):
            assert key in defaults

    def test_defaults_are_fresh_copies(self):
        a = icdcs_defaults()
        a["v"] = -1
        assert icdcs_defaults()["v"] != -1


class TestMechanismScenario:
    def test_reproducible(self):
        a = build_mechanism_scenario(10, seed=5)
        b = build_mechanism_scenario(10, seed=5)
        assert a.true_costs() == b.true_costs()

    def test_seeds_differ(self):
        a = build_mechanism_scenario(10, seed=5)
        b = build_mechanism_scenario(10, seed=6)
        assert a.true_costs() != b.true_costs()

    def test_churn_assigns_presence(self):
        scenario = build_mechanism_scenario(30, seed=1, churn=True)
        assert len(scenario.presence) > 0

    def test_staleness_wrapping(self):
        scenario = build_mechanism_scenario(5, seed=1, staleness_boost=0.5)
        assert isinstance(scenario.valuation, StalenessAwareValuation)

    def test_participation_targets_helper(self):
        scenario = build_mechanism_scenario(4, seed=1)
        targets = scenario.participation_targets(0.25)
        assert targets == {0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25}

    def test_network_only_when_requested(self):
        assert build_mechanism_scenario(4, seed=1).network is None
        assert build_mechanism_scenario(4, seed=1, with_network=True).network is not None


class TestFLScenario:
    def test_quality_reflects_partition_skew(self):
        iid = build_fl_scenario(10, seed=2, num_samples=1500, dirichlet_alpha=None)
        skewed = build_fl_scenario(10, seed=2, num_samples=1500, dirichlet_alpha=0.1)
        iid_quality = sum(c.declared_quality for c in iid.clients) / 10
        skewed_quality = sum(c.declared_quality for c in skewed.clients) / 10
        assert iid_quality > skewed_quality

    def test_mlp_model_option(self):
        scenario = build_fl_scenario(4, seed=2, num_samples=600, model="mlp")
        from repro.fl.mlp import MLPClassifier

        assert isinstance(scenario.fl.server.model, MLPClassifier)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_fl_scenario(4, seed=2, num_samples=600, model="transformer")

    def test_fl_clients_cover_population(self):
        scenario = build_fl_scenario(6, seed=2, num_samples=900)
        assert set(scenario.fl.fl_clients) == set(scenario.client_ids)
