"""Tests for pay-on-delivery semantics under unreliable clients."""

import numpy as np
import pytest

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.economics.client_profile import build_population
from repro.simulation.scenarios import build_mechanism_scenario
from repro.core.valuation import LinearValuation


def run_with_reliability(reliability_range, rounds=60, seed=3):
    clients = build_population(
        10,
        seed=seed,
        energy_constrained=False,
        delivery_reliability_range=reliability_range,
    )
    mechanism = LongTermVCGMechanism(
        LongTermVCGConfig(v=20.0, budget_per_round=3.0, max_winners=4)
    )
    runner = SimulationRunner(mechanism, clients, LinearValuation(), seed=seed)
    return runner.run(rounds)


class TestDeliveryFailures:
    def test_fully_reliable_never_fails(self):
        log = run_with_reliability((1.0, 1.0))
        assert all(record.failed == () for record in log)

    def test_fully_unreliable_never_paid(self):
        log = run_with_reliability((0.0, 0.0))
        assert log.total_payment() == 0.0
        assert all(record.selected == () for record in log)
        # The mechanism kept trying — failures are recorded.
        assert any(record.failed for record in log)

    def test_partial_reliability_mix(self):
        log = run_with_reliability((0.5, 0.9))
        delivered = sum(len(r.selected) for r in log)
        failed = sum(len(r.failed) for r in log)
        assert delivered > 0
        assert failed > 0
        # Every payment belongs to a delivered winner only.
        for record in log:
            assert set(record.payments) == set(record.selected)
            assert not set(record.selected) & set(record.failed)

    def test_committed_payment_diagnostic(self):
        log = run_with_reliability((0.0, 0.5))
        rounds_with_failures = [r for r in log if r.failed]
        assert rounds_with_failures
        for record in rounds_with_failures:
            committed = record.diagnostics.get("committed_payment")
            assert committed is not None
            assert committed >= record.total_payment - 1e-9

    def test_failed_winners_still_drain_battery(self):
        clients = build_population(
            6,
            seed=5,
            energy_constrained=True,
            delivery_reliability_range=(0.0, 0.0),
        )
        initial = {c.client_id: c.battery.level for c in clients}
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=20.0, budget_per_round=3.0, max_winners=3)
        )
        runner = SimulationRunner(mechanism, clients, LinearValuation(), seed=1)
        log = runner.run(5)
        attempted = {cid for record in log for cid in record.failed}
        assert attempted  # somebody won and failed
        # At least one attempting client is below its starting level
        # (harvest can partially refill, so check the minimum over rounds).
        min_levels = {
            cid: min(record.battery_levels[cid] for record in log)
            for cid in attempted
        }
        assert any(min_levels[cid] < initial[cid] - 1e-9 for cid in attempted)

    def test_validation(self):
        from repro.economics.client_profile import EconomicClient
        from repro.economics.cost_models import CostProfile, LinearCostModel
        from repro.economics.bidding import TruthfulStrategy

        with pytest.raises(ValueError):
            EconomicClient(
                client_id=0,
                cost_model=LinearCostModel(CostProfile(0.001, 0.1, 1.0)),
                strategy=TruthfulStrategy(),
                declared_size=10,
                declared_quality=1.0,
                local_steps=5,
                batch_size=32,
                rng=np.random.default_rng(0),
                delivery_reliability=1.5,
            )
