"""Tests for repro.simulation.events."""

import numpy as np
import pytest

from repro.simulation.events import EventLog, RoundRecord


def record(index=0, selected=(0,), payments=None, values=None, costs=None, acc=float("nan")):
    selected = tuple(selected)
    payments = payments or {cid: 1.0 for cid in selected}
    values = values or {0: 2.0, 1: 1.5}
    costs = costs or {0: 0.5, 1: 0.7}
    return RoundRecord(
        round_index=index,
        available=(0, 1),
        bids=dict(costs),
        true_costs=dict(costs),
        values=dict(values),
        selected=selected,
        payments=payments,
        test_accuracy=acc,
    )


class TestRoundRecord:
    def test_total_payment(self):
        assert record(payments={0: 1.5}).total_payment == 1.5

    def test_true_welfare_uses_true_costs(self):
        r = record(selected=(0, 1), payments={0: 5.0, 1: 5.0})
        assert r.true_welfare == pytest.approx((2.0 - 0.5) + (1.5 - 0.7))

    def test_server_surplus(self):
        r = record(selected=(0,), payments={0: 1.2})
        assert r.server_surplus == pytest.approx(2.0 - 1.2)


class TestEventLog:
    def test_ordering_enforced(self):
        log = EventLog()
        log.record(record(0))
        with pytest.raises(ValueError):
            log.record(record(0))

    def test_series(self):
        log = EventLog()
        log.record(record(0, payments={0: 1.0}))
        log.record(record(1, payments={0: 2.0}))
        assert log.payment_series() == [1.0, 2.0]
        assert log.cumulative(log.payment_series()) == [1.0, 3.0]
        assert log.total_payment() == 3.0
        assert log.average_payment() == 1.5

    def test_selection_and_availability_counts(self):
        log = EventLog()
        log.record(record(0, selected=(0,)))
        log.record(record(1, selected=(0, 1), payments={0: 1.0, 1: 1.0}))
        assert log.selection_counts() == {0: 2, 1: 1}
        assert log.availability_counts() == {0: 2, 1: 2}

    def test_accuracy_series_drops_nan(self):
        log = EventLog()
        log.record(record(0, acc=0.5))
        log.record(record(1))
        log.record(record(2, acc=0.7))
        xs, ys = log.accuracy_series()
        assert xs == [0, 2]
        assert ys == [0.5, 0.7]

    def test_diagnostics_series_missing_is_nan(self):
        log = EventLog()
        log.record(record(0))
        assert np.isnan(log.diagnostics_series("q")[0])

    def test_welfare_totals(self):
        log = EventLog()
        log.record(record(0, selected=(0,)))
        log.record(record(1, selected=(1,), payments={1: 1.0}))
        assert log.total_welfare() == pytest.approx(1.5 + 0.8)
