"""Tests for repro.simulation.runner."""

import numpy as np
import pytest

from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.mechanisms import AllAvailableMechanism, RandomSelectionMechanism
from repro.simulation.environment import OnlineAvailability
from repro.simulation.runner import SimulationRunner
from repro.simulation.scenarios import build_fl_scenario, build_mechanism_scenario


def lt_vcg(max_winners=5, **kw):
    return LongTermVCGMechanism(
        LongTermVCGConfig(
            v=kw.pop("v", 20.0),
            budget_per_round=kw.pop("budget_per_round", 3.0),
            max_winners=max_winners,
            **kw,
        )
    )


class TestMechanismOnlyRuns:
    def test_log_structure(self):
        scenario = build_mechanism_scenario(10, seed=1)
        runner = SimulationRunner(
            lt_vcg(), scenario.clients, scenario.valuation, seed=2
        )
        log = runner.run(20)
        assert len(log) == 20
        for t, record in enumerate(log):
            assert record.round_index == t
            assert set(record.selected) <= set(record.available)
            assert set(record.payments) == set(record.selected)
            assert set(record.bids) == set(record.available)

    def test_true_costs_recorded(self):
        scenario = build_mechanism_scenario(8, seed=1)
        costs = scenario.true_costs()
        runner = SimulationRunner(lt_vcg(), scenario.clients, scenario.valuation)
        log = runner.run(5)
        for record in log:
            for cid in record.available:
                assert record.true_costs[cid] == pytest.approx(costs[cid])

    def test_deterministic_given_seed(self):
        def run_once():
            scenario = build_mechanism_scenario(12, seed=7, energy_constrained=True)
            runner = SimulationRunner(
                lt_vcg(), scenario.clients, scenario.valuation, seed=3
            )
            log = runner.run(40)
            return (
                [r.selected for r in log],
                [round(r.total_payment, 12) for r in log],
            )

        assert run_once() == run_once()

    def test_presence_model_respected(self):
        scenario = build_mechanism_scenario(6, seed=1)
        presence = {cid: OnlineAvailability(join_round=10) for cid in scenario.client_ids[:3]}
        runner = SimulationRunner(
            AllAvailableMechanism(),
            scenario.clients,
            scenario.valuation,
            presence=presence,
        )
        log = runner.run(12)
        for record in log.records[:10]:
            assert all(cid >= 3 for cid in record.available)
        assert set(log.records[11].available) == set(scenario.client_ids)

    def test_energy_gating(self):
        """Battery-constrained clients drop out after participating."""
        scenario = build_mechanism_scenario(10, seed=3, energy_constrained=True)
        runner = SimulationRunner(
            AllAvailableMechanism(), scenario.clients, scenario.valuation
        )
        log = runner.run(30)
        # With everyone selected every round, batteries must deplete for at
        # least some under-provisioned clients at some point.
        availability = [len(r.available) for r in log]
        assert min(availability) < 10

    def test_battery_levels_recorded(self):
        scenario = build_mechanism_scenario(5, seed=3, energy_constrained=True)
        runner = SimulationRunner(
            AllAvailableMechanism(), scenario.clients, scenario.valuation
        )
        log = runner.run(3)
        assert set(log[0].battery_levels) == set(scenario.client_ids)

    def test_no_bids_round_handled(self):
        scenario = build_mechanism_scenario(3, seed=1)
        presence = {
            cid: OnlineAvailability(join_round=5) for cid in scenario.client_ids
        }
        runner = SimulationRunner(
            lt_vcg(), scenario.clients, scenario.valuation, presence=presence
        )
        log = runner.run(3)
        assert all(r.selected == () for r in log)

    def test_network_durations(self):
        scenario = build_mechanism_scenario(6, seed=2, with_network=True)
        runner = SimulationRunner(
            AllAvailableMechanism(),
            scenario.clients,
            scenario.valuation,
            network=scenario.network,
        )
        log = runner.run(4)
        assert all(r.round_duration > 0 for r in log)

    def test_rejects_duplicate_ids(self):
        scenario = build_mechanism_scenario(4, seed=1)
        clients = scenario.clients + [scenario.clients[0]]
        with pytest.raises(ValueError):
            SimulationRunner(lt_vcg(), clients, scenario.valuation)

    def test_rejects_zero_rounds(self):
        scenario = build_mechanism_scenario(4, seed=1)
        runner = SimulationRunner(lt_vcg(), scenario.clients, scenario.valuation)
        with pytest.raises(ValueError):
            runner.run(0)


class TestFLRuns:
    def test_accuracy_improves(self):
        scenario = build_fl_scenario(
            10, seed=4, num_samples=2000, eval_every=5
        )
        runner = SimulationRunner(
            lt_vcg(max_winners=5, budget_per_round=10.0),
            scenario.clients,
            scenario.valuation,
            fl=scenario.fl,
        )
        log = runner.run(40)
        xs, accuracies = log.accuracy_series()
        assert accuracies[-1] > accuracies[0] + 0.1
        assert accuracies[-1] > 0.3

    def test_final_round_always_evaluated(self):
        scenario = build_fl_scenario(6, seed=4, num_samples=800, eval_every=100)
        runner = SimulationRunner(
            lt_vcg(), scenario.clients, scenario.valuation, fl=scenario.fl
        )
        log = runner.run(7)
        assert not np.isnan(log[6].test_accuracy)

    def test_declared_sizes_match_shards(self):
        scenario = build_fl_scenario(8, seed=4, num_samples=1000)
        for client in scenario.clients:
            fl_client = scenario.fl.fl_clients[client.client_id]
            assert client.declared_size == fl_client.num_samples


def assert_logs_identical(expected_log, actual_log):
    import dataclasses
    import math

    assert len(expected_log) == len(actual_log)
    for expected, actual in zip(expected_log, actual_log):
        for field in dataclasses.fields(expected):
            left = getattr(expected, field.name)
            right = getattr(actual, field.name)
            if (
                isinstance(left, float)
                and isinstance(right, float)
                and math.isnan(left)
                and math.isnan(right)
            ):
                continue
            assert left == right, (expected.round_index, field.name)


class TestBatchedRuns:
    """run(batch_rounds=R) must be exact on history-free populations."""

    @pytest.mark.parametrize("batch_rounds", [2, 7, 32, 200])
    def test_mechanism_only_batched_equals_sequential(self, batch_rounds):
        def run_once(batch):
            scenario = build_mechanism_scenario(15, seed=5)
            runner = SimulationRunner(
                lt_vcg(), scenario.clients, scenario.valuation, seed=3
            )
            return runner.run(60, batch_rounds=batch)

        assert_logs_identical(run_once(None), run_once(batch_rounds))

    def test_stateless_mechanism_batched_equals_sequential(self):
        def run_once(batch):
            scenario = build_mechanism_scenario(15, seed=5)
            runner = SimulationRunner(
                AllAvailableMechanism(), scenario.clients, scenario.valuation, seed=3
            )
            return runner.run(30, batch_rounds=batch)

        assert_logs_identical(run_once(None), run_once(30))

    def test_rng_mechanism_batched_equals_sequential(self):
        def run_once(batch):
            scenario = build_mechanism_scenario(12, seed=6)
            runner = SimulationRunner(
                RandomSelectionMechanism(4, np.random.default_rng(9)),
                scenario.clients,
                scenario.valuation,
                seed=3,
            )
            return runner.run(40, batch_rounds=batch)

        assert_logs_identical(run_once(None), run_once(16))

    def test_churn_presence_batched_equals_sequential(self):
        def run_once(batch):
            scenario = build_mechanism_scenario(12, seed=8, churn=True)
            runner = SimulationRunner(
                lt_vcg(), scenario.clients, scenario.valuation, seed=3
            )
            return runner.run(50, batch_rounds=batch)

        assert_logs_identical(run_once(None), run_once(25))

    def test_fl_batched_equals_sequential_and_evals_on_schedule(self):
        def run_once(batch):
            scenario = build_fl_scenario(8, seed=2, num_samples=600, eval_every=5)
            runner = SimulationRunner(
                lt_vcg(max_winners=3, budget_per_round=2.0),
                scenario.clients,
                scenario.valuation,
                fl=scenario.fl,
                seed=3,
            )
            return runner.run(12, batch_rounds=batch)

        sequential = run_once(None)
        batched = run_once(8)
        assert_logs_identical(sequential, batched)
        evaluated = [
            r.round_index for r in batched if not np.isnan(r.test_accuracy)
        ]
        assert evaluated == [0, 5, 10, 11]

    def test_window_sizes_respect_eval_boundaries(self):
        scenario = build_fl_scenario(6, seed=2, num_samples=400, eval_every=4)
        runner = SimulationRunner(
            lt_vcg(), scenario.clients, scenario.valuation, fl=scenario.fl, seed=1
        )
        sizes = runner._window_sizes(10, 100)
        assert sum(sizes) == 10
        starts = [sum(sizes[:i]) for i in range(len(sizes))]
        # Every eval round (0, 4, 8) and the final round start a window.
        assert {0, 4, 8, 9} <= set(starts)

    def test_history_free_metadata_flag(self):
        assert build_mechanism_scenario(5, seed=0).metadata["history_free"]
        assert not build_mechanism_scenario(
            5, seed=0, energy_constrained=True
        ).metadata["history_free"]
        assert not build_mechanism_scenario(
            5, seed=0, staleness_boost=0.5
        ).metadata["history_free"]
