"""Tests for repro.simulation.topology."""

import networkx as nx
import numpy as np
import pytest

from repro.simulation.topology import HierarchicalTopology


def simple_topology():
    return HierarchicalTopology(
        edge_of={0: 0, 1: 0, 2: 1},
        client_latency={0: 0.1, 1: 0.4, 2: 0.2},
        edge_latency={0: 0.05, 1: 0.5},
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="same clients"):
            HierarchicalTopology({0: 0}, {1: 0.1}, {0: 0.1})
        with pytest.raises(ValueError, match="missing"):
            HierarchicalTopology({0: 7}, {0: 0.1}, {0: 0.1})
        with pytest.raises(ValueError):
            HierarchicalTopology({0: 0}, {0: 0.0}, {0: 0.1})

    def test_graph_is_a_tree_into_cloud(self):
        topology = simple_topology()
        graph = topology.graph
        assert nx.is_directed_acyclic_graph(graph)
        # Every client reaches the cloud.
        for client in (0, 1, 2):
            assert nx.has_path(graph, f"client/{client}", "cloud")

    def test_random_reproducible(self):
        a = HierarchicalTopology.random([0, 1, 2, 3], 2, np.random.default_rng(5))
        b = HierarchicalTopology.random([0, 1, 2, 3], 2, np.random.default_rng(5))
        assert a.edge_of == b.edge_of
        assert a.client_latency == b.client_latency


class TestQueries:
    def test_clients_under(self):
        topology = simple_topology()
        assert topology.clients_under(0) == (0, 1)
        assert topology.clients_under(1) == (2,)

    def test_path_latency(self):
        topology = simple_topology()
        assert topology.path_latency(0) == pytest.approx(0.1 + 0.05)
        assert topology.path_latency(2) == pytest.approx(0.2 + 0.5)
        with pytest.raises(KeyError):
            topology.path_latency(9)


class TestRoundDuration:
    def test_single_edge_straggler(self):
        topology = simple_topology()
        # Winners 0 and 1 share edge 0: slowest client 0.4 + edge 0.05.
        assert topology.round_duration((0, 1)) == pytest.approx(0.45)

    def test_cross_edge_max(self):
        topology = simple_topology()
        # Edge 0 finishes at 0.45; edge 1 at 0.2 + 0.5 = 0.7.
        assert topology.round_duration((0, 1, 2)) == pytest.approx(0.7)

    def test_empty(self):
        assert simple_topology().round_duration(()) == 0.0

    def test_pipelining_beats_flat_star(self):
        """Hierarchical rounds are never slower than summing worst hops."""
        rng = np.random.default_rng(2)
        topology = HierarchicalTopology.random(list(range(20)), 4, rng)
        selected = tuple(range(0, 20, 2))
        duration = topology.round_duration(selected)
        flat_bound = max(topology.path_latency(c) for c in selected)
        assert duration <= flat_bound + 1e-12
        assert duration >= max(topology.client_latency[c] for c in selected)


class TestConcentration:
    def test_all_on_one_edge(self):
        topology = simple_topology()
        assert topology.edge_concentration((0, 1)) == 1.0

    def test_spread(self):
        topology = simple_topology()
        assert topology.edge_concentration((0, 2)) == pytest.approx(0.5)

    def test_empty(self):
        assert simple_topology().edge_concentration(()) == 0.0
