"""Tests for repro.analysis.convergence."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    area_under_curve,
    moving_average,
    plateau_level,
    rounds_to_target,
)


class TestRoundsToTarget:
    def test_first_crossing(self):
        assert rounds_to_target([0, 10, 20], [0.1, 0.5, 0.9], 0.5) == 10

    def test_never_reached(self):
        assert rounds_to_target([0, 10], [0.1, 0.2], 0.9) is None

    def test_non_monotone_curve_uses_first_touch(self):
        assert rounds_to_target([0, 1, 2, 3], [0.1, 0.6, 0.4, 0.7], 0.5) == 1

    def test_rejects_unsorted_x(self):
        with pytest.raises(ValueError):
            rounds_to_target([10, 0], [0.1, 0.2], 0.5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            rounds_to_target([0, 1], [0.1], 0.5)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        ys = [1.0, 5.0, 2.0]
        assert moving_average(ys, 1) == ys

    def test_smooths(self):
        noisy = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0]
        smooth = moving_average(noisy, 4)
        assert np.std(smooth[3:]) < np.std(noisy[3:])

    def test_trailing_semantics(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        assert out == [1.0, 1.5, 2.5, 3.5]

    def test_empty(self):
        assert moving_average([], 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestAreaUnderCurve:
    def test_constant_curve(self):
        assert area_under_curve([0, 10, 20], [0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_linear_ramp(self):
        assert area_under_curve([0, 10], [0.0, 1.0]) == pytest.approx(0.5)

    def test_rewards_early_convergence(self):
        fast = area_under_curve([0, 1, 10], [0.0, 0.9, 0.9])
        slow = area_under_curve([0, 9, 10], [0.0, 0.0, 0.9])
        assert fast > slow

    def test_single_point(self):
        assert area_under_curve([5], [0.7]) == pytest.approx(0.7)


class TestPlateauLevel:
    def test_tail_mean(self):
        ys = [0.0] * 8 + [0.8, 0.9]
        assert plateau_level(ys, tail_fraction=0.2) == pytest.approx(0.85)

    def test_whole_curve(self):
        assert plateau_level([1.0, 2.0], tail_fraction=1.0) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            plateau_level([], tail_fraction=0.2)
        with pytest.raises(ValueError):
            plateau_level([1.0], tail_fraction=0.0)
