"""Tests for the analysis package (welfare, regret, fairness, budget, reporting)."""

import numpy as np
import pytest

from repro.analysis.budget import budget_report
from repro.analysis.fairness import (
    gini_coefficient,
    jain_index,
    participation_rates,
    starvation_count,
)
from repro.analysis.regret import regret_against_plan, rounds_to_auction_rounds
from repro.analysis.reporting import (
    accuracy_table,
    mechanism_comparison_table,
    payment_table,
)
from repro.analysis.welfare import welfare_summary
from repro.simulation.events import EventLog, RoundRecord


def build_log(payments_per_round, welfare_value=2.0, cost=0.5):
    """A log where each round selects client 0 at the given payment."""
    log = EventLog()
    for t, payment in enumerate(payments_per_round):
        log.record(
            RoundRecord(
                round_index=t,
                available=(0, 1),
                bids={0: cost, 1: cost},
                true_costs={0: cost, 1: cost},
                values={0: welfare_value, 1: welfare_value},
                selected=(0,),
                payments={0: payment},
            )
        )
    return log


class TestWelfareSummary:
    def test_totals(self):
        log = build_log([1.0, 1.0, 1.0])
        summary = welfare_summary(log)
        assert summary.total_welfare == pytest.approx(3 * 1.5)
        assert summary.total_payment == pytest.approx(3.0)
        assert summary.winners_per_round == 1.0
        assert summary.welfare_per_unit_spend() == pytest.approx(1.5)

    def test_empty_log(self):
        summary = welfare_summary(EventLog())
        assert summary.rounds == 0
        assert summary.total_welfare == 0.0


class TestBudgetReport:
    def test_compliant_run(self):
        log = build_log([1.0] * 10)
        report = budget_report(log, budget_per_round=1.0)
        assert report.compliant
        assert report.final_overspend_ratio == pytest.approx(1.0)
        assert report.peak_cumulative_overspend == pytest.approx(0.0)

    def test_overspending_run(self):
        log = build_log([2.0] * 10)
        report = budget_report(log, budget_per_round=1.0)
        assert not report.compliant
        assert report.final_overspend_ratio == pytest.approx(2.0)
        assert report.violating_prefix_fraction == 1.0

    def test_transient_overspend_converges(self):
        payments = [3.0] * 5 + [0.0] * 45
        report = budget_report(build_log(payments), budget_per_round=1.0)
        assert report.compliant
        assert report.peak_cumulative_overspend == pytest.approx(10.0)
        assert 0.0 < report.violating_prefix_fraction < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            budget_report(EventLog(), budget_per_round=0.0)


class TestFairness:
    def test_jain_bounds(self):
        assert jain_index([1, 1, 1, 1]) == pytest.approx(1.0)
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_gini_bounds(self):
        assert gini_coefficient([1, 1, 1]) == pytest.approx(0.0)
        assert gini_coefficient([0, 0, 9]) > 0.6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jain_index([-1.0])
        with pytest.raises(ValueError):
            gini_coefficient([-1.0])

    def test_participation_rates_and_starvation(self):
        log = build_log([1.0] * 4)
        rates = participation_rates(log, [0, 1])
        assert rates == {0: 1.0, 1: 0.0}
        assert starvation_count(log, [0, 1], minimum_rate=0.5) == 1


class TestRegret:
    def test_offline_at_least_online(self):
        log = build_log([1.0] * 20)
        point = regret_against_plan(log, budget_per_round=1.0, max_winners=1)
        assert point.offline_welfare >= point.online_welfare - 1e-9
        assert point.regret >= -1e-9

    def test_rebuild_rounds_uses_true_costs(self):
        log = EventLog()
        log.record(
            RoundRecord(
                round_index=0,
                available=(0,),
                bids={0: 99.0},  # strategic bid
                true_costs={0: 0.5},
                values={0: 2.0},
                selected=(),
                payments={},
            )
        )
        rounds = rounds_to_auction_rounds(log)
        assert rounds[0].bid_of(0).cost == 0.5

    def test_empty_log(self):
        point = regret_against_plan(EventLog(), budget_per_round=1.0, max_winners=1)
        assert point.regret == 0.0


class TestReporting:
    def test_tables_render(self):
        logs = {"a": build_log([1.0] * 5), "b": build_log([2.0] * 5)}
        table = mechanism_comparison_table(
            logs, budget_per_round=1.0, client_ids=[0, 1]
        )
        assert "a" in table and "b" in table and "jain" in table
        payments = payment_table(logs)
        assert "premium" in payments

    def test_accuracy_table_handles_missing_eval(self):
        logs = {"x": build_log([1.0] * 3)}
        table = accuracy_table(logs)
        assert "nan" in table or "-" in table
