"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import paired_comparison, run_over_seeds, summarize


class TestSummarize:
    def test_mean_and_interval(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == pytest.approx(3.0)
        assert summary.ci_low < 3.0 < summary.ci_high
        assert summary.num_samples == 5

    def test_interval_contains_truth_mostly(self, rng):
        """~95% of 95%-CIs over N(0,1) samples should contain 0."""
        contained = 0
        trials = 300
        for _ in range(trials):
            summary = summarize(rng.normal(0, 1, size=10).tolist())
            if summary.ci_low <= 0.0 <= summary.ci_high:
                contained += 1
        assert contained / trials > 0.88

    def test_single_value(self):
        summary = summarize([2.0])
        assert summary.mean == 2.0
        assert summary.ci_low == summary.ci_high == 2.0

    def test_narrower_with_more_samples(self, rng):
        small = summarize(rng.normal(0, 1, size=5).tolist())
        large = summarize(np.random.default_rng(1).normal(0, 1, size=500).tolist())
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    def test_str_is_readable(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "±" in text and "n=3" in text


class TestRunOverSeeds:
    def test_calls_metric_per_seed(self):
        calls = []

        def metric(seed):
            calls.append(seed)
            return float(seed)

        summary = run_over_seeds(metric, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert summary.mean == pytest.approx(2.0)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_over_seeds(lambda s: 0.0, [])


class TestPairedComparison:
    def test_detects_clear_winner(self, rng):
        comparison = paired_comparison(
            lambda seed: float(np.random.default_rng(seed).normal(5.0, 0.1)),
            lambda seed: float(np.random.default_rng(seed + 999).normal(1.0, 0.1)),
            seeds=list(range(8)),
        )
        assert comparison.mean_difference > 3.0
        assert comparison.significant
        assert comparison.p_value < 0.01
        assert comparison.wins == 8

    def test_no_difference_not_significant(self):
        comparison = paired_comparison(
            lambda seed: float(np.random.default_rng(seed).normal()),
            lambda seed: float(np.random.default_rng(seed).normal()),
            seeds=list(range(6)),
        )
        assert comparison.mean_difference == pytest.approx(0.0)
        assert not comparison.significant

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            paired_comparison(lambda s: 0.0, lambda s: 0.0, seeds=[1])
