"""Integration: UCB-learned valuation driving the auction over an FL run."""

import numpy as np
import pytest

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.core.quality_estimation import LearnedValuation
from repro.core.valuation import LinearValuation
from repro.simulation.scenarios import build_fl_scenario


def run_with_learning(blend, seed=6, rounds=80):
    scenario = build_fl_scenario(12, seed=seed, num_samples=1800, eval_every=20)
    valuation = LearnedValuation(
        scenario.valuation, blend=blend, bonus=0.3, optimistic_value=1.5
    )
    mechanism = LongTermVCGMechanism(
        LongTermVCGConfig(v=25.0, budget_per_round=5.0, max_winners=4)
    )
    runner = SimulationRunner(
        mechanism, scenario.clients, valuation, fl=scenario.fl, seed=7
    )
    log = runner.run(rounds)
    return log, valuation, scenario


class TestLearnedValuationIntegration:
    def test_contributions_flow_back(self):
        log, valuation, _ = run_with_learning(blend=0.5)
        observed = sum(
            valuation.observations_of(cid) for cid in range(12)
        )
        total_selections = sum(len(r.selected) for r in log)
        assert observed == total_selections
        assert observed > 0

    def test_explores_before_exploiting(self):
        """Optimistic initialisation samples every *economical* client early.

        Clients whose true cost exceeds the optimistic value are never
        profitable to recruit and are correctly left unexplored.
        """
        log, valuation, scenario = run_with_learning(blend=0.0, rounds=60)
        costs = scenario.true_costs()
        # Exploration competes for K slots: only clients whose *optimistic*
        # surplus (optimistic_value - cost) is clearly competitive are
        # guaranteed a sample.  Cheap clients qualify unambiguously.
        cheap = [cid for cid in range(12) if costs[cid] < 0.5]
        assert cheap  # the scenario has cheap clients
        assert all(valuation.observations_of(cid) > 0 for cid in cheap)
        # Unexplored clients keep the optimistic value (never written down).
        unexplored = [cid for cid in range(12) if valuation.observations_of(cid) == 0]
        for cid in unexplored:
            assert valuation.ucb_of(cid) == valuation.optimistic_value

    def test_selection_correlates_with_contribution(self):
        """Clients with higher mean observed contribution win more rounds."""
        log, valuation, _ = run_with_learning(blend=0.0, rounds=80)
        counts = log.selection_counts()
        contributions = [valuation.mean_contribution(cid) for cid in range(12)]
        selections = [counts.get(cid, 0) for cid in range(12)]
        correlation = np.corrcoef(contributions, selections)[0, 1]
        assert correlation > 0.2

    def test_learning_keeps_training_healthy(self):
        log, _, _ = run_with_learning(blend=0.5, rounds=80)
        _, accuracies = log.accuracy_series()
        assert accuracies[-1] > 0.3

    def test_truthfulness_preserved_with_learned_values(self, rng):
        """A frozen learned valuation is still bid-independent: the one-shot
        deviation check passes on a round built from it."""
        from repro.core.bids import AuctionRound, Bid
        from repro.core.properties import verify_truthfulness

        valuation = LearnedValuation(LinearValuation(), blend=0.3, bonus=0.5)
        for cid in range(6):
            valuation.observe_contributions({cid: float(rng.uniform(0.5, 2.0))})
        costs = {i: float(rng.uniform(0.2, 1.5)) for i in range(6)}
        bids = tuple(
            Bid(client_id=i, cost=costs[i], data_size=100) for i in range(6)
        )
        auction_round = AuctionRound(
            index=0, bids=bids, values=valuation.values_for(bids)
        )
        config = LongTermVCGConfig(v=15.0, budget_per_round=2.0, max_winners=3)
        report = verify_truthfulness(
            lambda: LongTermVCGMechanism(config), auction_round, costs
        )
        assert report.is_truthful
