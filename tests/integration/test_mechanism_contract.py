"""Contract tests: every mechanism honours the RoundOutcome interface.

Runs the complete mechanism zoo over randomised rounds and checks the
invariants the simulator relies on, for all of them at once: winners come
from the bidders, payments cover exactly the winners and are non-negative,
repeated runs from fresh state are deterministic given fixed randomness,
and empty markets are handled.  New mechanisms added to the registry get
this coverage for free.
"""

import numpy as np
import pytest

from repro.core.bids import AuctionRound
from repro.core.longterm_vcg import LongTermVCGConfig, LongTermVCGMechanism
from repro.mechanisms import (
    AllAvailableMechanism,
    EpsilonGreedyMechanism,
    FixedPriceMechanism,
    GreedyFirstPriceMechanism,
    MyopicVCGMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)
from tests.conftest import random_instance


def mechanism_zoo():
    """Fresh instances of every per-round mechanism, keyed by name."""
    return {
        "lt-vcg": LongTermVCGMechanism(
            LongTermVCGConfig(v=15.0, budget_per_round=2.0, max_winners=4)
        ),
        "lt-vcg-greedy": LongTermVCGMechanism(
            LongTermVCGConfig(
                v=15.0, budget_per_round=2.0, max_winners=4, wd_method="greedy"
            )
        ),
        "myopic-vcg": MyopicVCGMechanism(max_winners=4),
        "prop-share": ProportionalShareMechanism(2.0, 4),
        "greedy-first-price": GreedyFirstPriceMechanism(2.0, 4),
        "fixed-price": FixedPriceMechanism(price=0.8, max_winners=4),
        "random": RandomSelectionMechanism(4, np.random.default_rng(0)),
        "epsilon-greedy": EpsilonGreedyMechanism(
            2.0, 4, epsilon=0.2, rng=np.random.default_rng(1)
        ),
        "all-available": AllAvailableMechanism(),
    }


@pytest.mark.parametrize("name", sorted(mechanism_zoo()))
class TestContract:
    def test_outcome_well_formed_on_random_rounds(self, name, rng):
        mechanism = mechanism_zoo()[name]
        for t in range(15):
            auction_round, _ = random_instance(rng, int(rng.integers(2, 9)))
            auction_round = AuctionRound(
                index=t, bids=auction_round.bids, values=auction_round.values
            )
            outcome = mechanism.run_round(auction_round)
            assert outcome.round_index == t
            assert set(outcome.selected) <= set(auction_round.client_ids)
            assert set(outcome.payments) == set(outcome.selected)
            assert all(p >= 0 for p in outcome.payments.values())

    def test_deterministic_from_fresh_state(self, name):
        def run_sequence():
            # Rebuild everything, including mechanism-owned RNGs.
            mechanism = mechanism_zoo()[name]
            rng = np.random.default_rng(42)
            results = []
            for t in range(10):
                auction_round, _ = random_instance(rng, 6)
                auction_round = AuctionRound(
                    index=t, bids=auction_round.bids, values=auction_round.values
                )
                outcome = mechanism.run_round(auction_round)
                results.append((outcome.selected, round(outcome.total_payment, 10)))
            return results

        assert run_sequence() == run_sequence()

    def test_reset_then_replay_matches(self, name, rng):
        mechanism = mechanism_zoo()[name]
        rounds = []
        for t in range(8):
            auction_round, _ = random_instance(rng, 5)
            rounds.append(
                AuctionRound(index=t, bids=auction_round.bids, values=auction_round.values)
            )
        if name in ("random", "epsilon-greedy"):
            pytest.skip("mechanism-owned RNG advances across runs by design")
        first = [mechanism.run_round(r).selected for r in rounds]
        mechanism.reset()
        second = [mechanism.run_round(r).selected for r in rounds]
        assert first == second

    def test_handles_single_bidder(self, name, rng):
        mechanism = mechanism_zoo()[name]
        auction_round, _ = random_instance(rng, 1)
        outcome = mechanism.run_round(auction_round)
        assert set(outcome.selected) <= {0}

    def test_handles_identical_bids(self, name):
        from tests.conftest import make_round

        mechanism = mechanism_zoo()[name]
        auction_round = make_round([0.5] * 6, [1.0] * 6)
        outcome = mechanism.run_round(auction_round)
        assert list(outcome.selected) == sorted(set(outcome.selected))
