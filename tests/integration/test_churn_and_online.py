"""Integration: online client dynamics — churn, dropout, late arrivals."""

import numpy as np
import pytest

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.budget import budget_report
from repro.mechanisms import AllAvailableMechanism
from repro.simulation.environment import OnlineAvailability
from repro.simulation.scenarios import build_mechanism_scenario


def lt_vcg(**overrides):
    return LongTermVCGMechanism(
        LongTermVCGConfig(
            v=overrides.pop("v", 15.0),
            budget_per_round=overrides.pop("budget_per_round", 1.5),
            max_winners=overrides.pop("max_winners", 5),
            **overrides,
        )
    )


class TestChurn:
    def test_late_joiners_eventually_win(self):
        scenario = build_mechanism_scenario(12, seed=2)
        late = scenario.client_ids[:4]
        presence = {cid: OnlineAvailability(join_round=100) for cid in late}
        runner = SimulationRunner(
            lt_vcg(), scenario.clients, scenario.valuation,
            presence=presence, seed=5,
        )
        log = runner.run(250)
        counts = log.selection_counts()
        # Nobody wins before joining...
        for record in log.records[:100]:
            assert not set(record.selected) & set(late)
        # ...but cheap late joiners do win afterwards.
        assert any(counts.get(cid, 0) > 0 for cid in late)

    def test_leavers_free_capacity_for_others(self):
        scenario = build_mechanism_scenario(10, seed=4)
        leavers = scenario.client_ids[:5]
        presence = {cid: OnlineAvailability(leave_round=50) for cid in leavers}
        runner = SimulationRunner(
            lt_vcg(max_winners=3), scenario.clients, scenario.valuation,
            presence=presence, seed=6,
        )
        log = runner.run(150)
        stayers = set(scenario.client_ids[5:])
        after = [r for r in log.records if r.round_index >= 50]
        for record in after:
            assert set(record.selected) <= stayers

    def test_budget_holds_under_churn(self):
        scenario = build_mechanism_scenario(20, seed=7, churn=True)
        runner = SimulationRunner(
            lt_vcg(v=10.0), scenario.clients, scenario.valuation,
            presence=scenario.presence, seed=8,
        )
        log = runner.run(500)
        report = budget_report(log, 1.5)
        assert report.final_overspend_ratio <= 1.15

    def test_queues_survive_empty_market(self):
        """Rounds where nobody is present must not corrupt mechanism state."""
        scenario = build_mechanism_scenario(5, seed=1)
        presence = {
            cid: OnlineAvailability(join_round=20) for cid in scenario.client_ids
        }
        mechanism = lt_vcg(
            participation_targets={cid: 0.1 for cid in scenario.client_ids}
        )
        runner = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation,
            presence=presence, seed=2,
        )
        log = runner.run(40)
        assert all(r.selected == () for r in log.records[:20])
        assert any(r.selected for r in log.records[20:])
        # Budget queue untouched during the quiet phase (no payments).
        assert mechanism.controller.queue.backlog >= 0.0


class TestDropout:
    def test_dropout_thins_the_market(self):
        scenario = build_mechanism_scenario(10, seed=9)
        presence = {
            cid: OnlineAvailability(dropout_prob=0.5)
            for cid in scenario.client_ids
        }
        runner = SimulationRunner(
            AllAvailableMechanism(), scenario.clients, scenario.valuation,
            presence=presence, seed=10,
        )
        log = runner.run(200)
        mean_available = np.mean([len(r.available) for r in log])
        assert mean_available == pytest.approx(5.0, abs=0.7)

    def test_staleness_valuation_interacts_with_dropout(self):
        """Frequently-absent clients accumulate staleness value and win when
        they do show up."""
        scenario = build_mechanism_scenario(10, seed=11, staleness_boost=1.0)
        flaky = scenario.client_ids[:3]
        presence = {cid: OnlineAvailability(dropout_prob=0.8) for cid in flaky}
        runner = SimulationRunner(
            lt_vcg(max_winners=3), scenario.clients, scenario.valuation,
            presence=presence, seed=12,
        )
        log = runner.run(400)
        counts = log.selection_counts()
        availability = log.availability_counts()
        # Conditional win rate of flaky clients is healthy: when present,
        # their staleness boost makes them attractive.
        for cid in flaky:
            if availability.get(cid, 0) >= 20:
                win_rate_when_present = counts.get(cid, 0) / availability[cid]
                assert win_rate_when_present > 0.2
