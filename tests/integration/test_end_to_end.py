"""Integration tests: full pipeline, cross-mechanism invariants, determinism."""

import numpy as np
import pytest

from repro import (
    LongTermVCGConfig,
    LongTermVCGMechanism,
    SimulationRunner,
    build_fl_scenario,
    build_mechanism_scenario,
)
from repro.analysis.budget import budget_report
from repro.analysis.fairness import jain_index, participation_rates
from repro.analysis.regret import regret_against_plan
from repro.analysis.welfare import welfare_summary
from repro.economics.bidding import AdaptiveStrategy, TruthfulStrategy
from repro.mechanisms import (
    GreedyFirstPriceMechanism,
    MyopicVCGMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)

V = 30.0
BUDGET = 1.0  # binding: unconstrained spend in this scenario is ~1.9/round
K = 5
ROUNDS = 200
N = 20


def lt_vcg(targets=None):
    return LongTermVCGMechanism(
        LongTermVCGConfig(
            v=V,
            budget_per_round=BUDGET,
            max_winners=K,
            participation_targets=targets,
        )
    )


def run(mechanism, seed=11, **scenario_kw):
    scenario = build_mechanism_scenario(N, seed=seed, **scenario_kw)
    runner = SimulationRunner(
        mechanism, scenario.clients, scenario.valuation, seed=99
    )
    return runner.run(ROUNDS), scenario


class TestLongRunBudget:
    def test_lt_vcg_complies_myopic_does_not(self):
        """The budget gap closes at O(V/T); use a horizon long relative to V."""
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=10.0, budget_per_round=BUDGET, max_winners=K)
        )
        scenario = build_mechanism_scenario(N, seed=11)
        lt_log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=99
        ).run(600)
        myopic_log, _ = run(MyopicVCGMechanism(max_winners=K))
        lt_report = budget_report(lt_log, BUDGET)
        myopic_report = budget_report(myopic_log, BUDGET)
        assert lt_report.average_spend <= BUDGET * 1.1
        assert myopic_report.average_spend > lt_report.average_spend

    def test_queue_certificate_holds(self):
        mechanism = lt_vcg()
        log, _ = run(mechanism)
        queue = mechanism.controller.queue
        assert queue.average_spend() <= queue.spend_bound() + 1e-9


class TestWelfareOrdering:
    def test_vcg_welfare_beats_random(self):
        lt_log, _ = run(lt_vcg())
        random_log, _ = run(RandomSelectionMechanism(K, np.random.default_rng(0)))
        assert welfare_summary(lt_log).total_welfare > welfare_summary(
            random_log
        ).total_welfare

    def test_offline_optimum_bounds_everything(self):
        for mechanism in (
            lt_vcg(),
            ProportionalShareMechanism(BUDGET, K),
            GreedyFirstPriceMechanism(BUDGET, K),
        ):
            log, _ = run(mechanism)
            point = regret_against_plan(log, budget_per_round=BUDGET, max_winners=K)
            assert point.regret >= -1e-6


class TestSustainabilityQueues:
    def test_targets_improve_fairness(self):
        plain_log, scenario = run(lt_vcg())
        targets = {cid: 0.2 for cid in range(N)}
        fair_log, _ = run(lt_vcg(targets=targets))
        plain_rates = list(participation_rates(plain_log, list(range(N))).values())
        fair_rates = list(participation_rates(fair_log, list(range(N))).values())
        assert jain_index(fair_rates) > jain_index(plain_rates)


class TestStrategicRobustness:
    def test_adaptive_bidders_cannot_beat_truthful_under_lt_vcg(self):
        """Under LT-VCG, a population of learning bidders ends up with mean
        markup near 1 (truthful); under pay-as-bid greedy it inflates."""

        def strategy_factory(cid, rng):
            return AdaptiveStrategy(learning_rate=0.4)

        def mean_factor(mechanism):
            scenario = build_mechanism_scenario(
                N, seed=21, strategy_factory=strategy_factory
            )
            SimulationRunner(
                mechanism, scenario.clients, scenario.valuation, seed=5
            ).run(400)
            factors = [
                c.strategy.expected_factor()
                for c in scenario.clients
                if isinstance(c.strategy, AdaptiveStrategy)
            ]
            return float(np.mean(factors))

        truthful_world = mean_factor(lt_vcg())
        pay_as_bid_world = mean_factor(GreedyFirstPriceMechanism(BUDGET, K))
        assert pay_as_bid_world > truthful_world + 0.1


class TestDeterminism:
    def test_identical_seeds_identical_logs(self):
        log_a, _ = run(lt_vcg(), energy_constrained=True)
        log_b, _ = run(lt_vcg(), energy_constrained=True)
        assert [r.selected for r in log_a] == [r.selected for r in log_b]
        assert log_a.payment_series() == log_b.payment_series()

    def test_different_seeds_differ(self):
        log_a, _ = run(lt_vcg(), seed=1)
        log_b, _ = run(lt_vcg(), seed=2)
        assert log_a.payment_series() != log_b.payment_series()


class TestFLIntegration:
    def test_auction_driven_training_learns(self):
        scenario = build_fl_scenario(12, seed=8, num_samples=2400, eval_every=10)
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=6.0, max_winners=6)
        )
        runner = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, fl=scenario.fl
        )
        log = runner.run(60)
        _, accuracies = log.accuracy_series()
        assert accuracies[-1] > 0.35
        assert budget_report(log, 6.0).average_spend <= 6.0 * 1.15
