"""Tests for repro.service.market (round closing, snapshots, failure modes)."""

import json

import pytest

from repro.config import ExperimentConfig
from repro.service.market import Market, MarketConfig, MarketError


def make_market(tmp_path=None, *, mechanism="lt-vcg", **kwargs):
    directory = tmp_path / "m" if tmp_path is not None else None
    experiment = ExperimentConfig(
        num_clients=8,
        v=10.0,
        budget_per_round=2.0,
        max_winners=3,
        extras={"mechanism": mechanism},
    )
    return Market(MarketConfig("m", experiment, **kwargs), directory)


def submit(market, client_id, cost=0.5, value=2.0):
    return market.submit_bid({"client_id": client_id, "cost": cost, "value": value})


class TestBidIntake:
    def test_accepts_and_buffers(self):
        market = make_market()
        payload = submit(market, 0)
        assert payload["round_index"] == 0
        assert payload["pending"] == 1
        assert market.bids_accepted == 1

    def test_duplicate_client_in_round_rejected(self):
        market = make_market()
        submit(market, 0)
        with pytest.raises(MarketError) as excinfo:
            submit(market, 0)
        assert excinfo.value.error_type == "bad-bid"
        assert market.bids_rejected == 1
        # ... but the same client may bid again in the next round.
        market.close_round(trigger="flush")
        submit(market, 0)

    @pytest.mark.parametrize(
        "bid",
        [
            {"client_id": "zero", "cost": 1.0, "value": 1.0},
            {"client_id": -1, "cost": 1.0, "value": 1.0},
            {"client_id": True, "cost": 1.0, "value": 1.0},
            {"client_id": 0, "cost": -0.5, "value": 1.0},
            {"client_id": 0, "cost": float("nan"), "value": 1.0},
            {"client_id": 0, "cost": float("inf"), "value": 1.0},
            {"client_id": 0, "cost": 1.0, "value": float("nan")},
            {"client_id": 0, "cost": 1.0},
            {"client_id": 0, "value": 1.0},
            {"client_id": 0, "cost": 1.0, "value": 1.0, "data_size": -1},
            {"client_id": 0, "cost": 1.0, "value": 1.0, "quality": -0.1},
        ],
    )
    def test_malformed_bids_rejected_typed(self, bid):
        market = make_market()
        with pytest.raises(MarketError) as excinfo:
            market.submit_bid(bid)
        assert excinfo.value.error_type == "bad-bid"
        # The pending round is untouched.
        assert market.pending_count == 0

    def test_rejection_never_corrupts_round(self):
        market = make_market()
        submit(market, 0)
        with pytest.raises(MarketError):
            submit(market, 0, cost=-1.0)  # duplicate AND negative
        record = market.close_round(trigger="flush")
        assert record["num_bids"] == 1
        assert record["selected"] == [0]


class TestRoundClosing:
    def test_close_runs_mechanism(self):
        market = make_market()
        for cid in range(4):
            submit(market, cid, cost=0.5 + 0.1 * cid)
        record = market.close_round(trigger="flush")
        assert record["round_index"] == 0
        assert record["num_bids"] == 4
        assert len(record["selected"]) == 3  # max_winners
        assert record["total_payment"] > 0
        assert "budget_backlog" in record["diagnostics"]
        assert market.next_round_index == 1

    def test_empty_round_is_explicit_not_a_hang(self):
        market = make_market()
        record = market.close_round(trigger="timer")
        assert record["empty"] is True
        assert record["selected"] == []
        assert record["payments"] == {}
        assert record["num_bids"] == 0
        assert market.empty_rounds == 1
        # The round index advances; the mechanism was never touched.
        assert market.next_round_index == 1
        assert market.mechanism.budget_backlog == 0.0

    def test_batch_trigger(self):
        market = make_market(max_round_bids=3)
        submit(market, 0)
        submit(market, 1)
        assert not market.should_close()
        submit(market, 2)
        assert market.should_close()

    def test_queue_state_lives_across_rounds(self):
        market = make_market()
        backlogs = []
        for round_index in range(5):
            for cid in range(4):
                submit(market, cid, cost=1.5, value=5.0)
            record = market.close_round(trigger="flush")
            backlogs.append(record["diagnostics"]["budget_backlog"])
        # Overspending rounds accumulate backlog monotonically here.
        assert backlogs == sorted(backlogs)
        assert backlogs[-1] > 0

    def test_outcomes_since_window(self):
        market = make_market()
        for _ in range(4):
            market.close_round(trigger="flush")
        records, complete = market.outcomes_since(2)
        assert [r["round_index"] for r in records] == [2, 3]
        assert complete


class TestPersistence:
    def test_snapshot_restore_round_trip(self, tmp_path, rng):
        market = make_market(tmp_path)
        for round_index in range(6):
            for cid in range(5):
                submit(
                    market,
                    cid,
                    cost=float(rng.uniform(0.2, 1.5)),
                    value=float(rng.uniform(0.5, 3.0)),
                )
            market.close_round(trigger="flush")
        submit(market, 3, cost=0.7)  # a pending, unclosed bid
        market.snapshot()

        restored = Market.restore(tmp_path / "m")
        assert restored.next_round_index == market.next_round_index
        assert restored.pending == market.pending
        assert restored.mechanism.budget_backlog == market.mechanism.budget_backlog
        assert restored.rounds_closed == market.rounds_closed
        assert restored.latency.count == market.latency.count

        # The restored market must continue bit-identically (client 3's
        # pending bid travelled in the snapshot).
        for cid in (0, 1):
            submit(market, cid)
            submit(restored, cid)
        a = market.close_round(trigger="flush")
        b = restored.close_round(trigger="flush")
        assert a["selected"] == b["selected"]
        assert a["payments"] == b["payments"]
        assert (
            a["diagnostics"]["budget_backlog"] == b["diagnostics"]["budget_backlog"]
        )

    def test_snapshot_written_on_every_close(self, tmp_path):
        market = make_market(tmp_path)
        submit(market, 0)
        market.close_round(trigger="flush")
        snapshot = json.loads((tmp_path / "m" / "snapshot.json").read_text())
        assert snapshot["next_round_index"] == 1
        assert snapshot["resumable"] is True
        assert snapshot["mechanism_state"]["budget_queue"]["steps"] == 1

    def test_outcomes_trail_appended(self, tmp_path):
        market = make_market(tmp_path)
        submit(market, 0)
        market.close_round(trigger="flush")
        market.close_round(trigger="timer")
        lines = (tmp_path / "m" / "outcomes.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["empty"] is True

    def test_restore_rejects_corrupt_snapshot(self, tmp_path):
        market = make_market(tmp_path)
        market.snapshot()
        path = tmp_path / "m" / "snapshot.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            Market.restore(tmp_path / "m")

    def test_restore_rejects_missing_snapshot(self, tmp_path):
        with pytest.raises(ValueError):
            Market.restore(tmp_path / "nowhere")


class TestStats:
    def test_stats_shape(self):
        market = make_market()
        for cid in range(3):
            submit(market, cid)
        market.close_round(trigger="flush")
        stats = market.stats()
        assert stats["name"] == "m"
        assert stats["mechanism"] == "lt-vcg"
        assert stats["rounds_closed"] == 1
        assert stats["bids_accepted"] == 3
        assert "budget_backlog" in stats
        assert stats["decision_latency_ms"]["count"] == 1
        assert stats["resumable"] is True

    def test_stateless_mechanism_market(self):
        market = make_market(mechanism="myopic-vcg")
        for cid in range(3):
            submit(market, cid)
        record = market.close_round(trigger="flush")
        assert record["selected"]
        stats = market.stats()
        assert "budget_backlog" not in stats
        assert stats["resumable"] is True  # {} state round-trips fine

    def test_bad_market_name_rejected(self):
        with pytest.raises(MarketError):
            MarketConfig("../evil", ExperimentConfig())
        with pytest.raises(MarketError):
            MarketConfig("", ExperimentConfig())
