"""Tests for the trace-replay load generator (repro.service.replay)."""

import pytest

from repro.config import ExperimentConfig
from repro.service.client import ServiceClient
from repro.service.replay import load_trace, replay_trace
from repro.service.server import start_server_thread
from repro.simulation.replay import save_event_log

from tests.service.test_equivalence import simulate


@pytest.fixture(scope="module")
def archived_run(tmp_path_factory):
    """A small archived run: its directory and its in-memory log."""
    config = ExperimentConfig(
        num_clients=8, num_rounds=15, v=10.0, budget_per_round=2.0,
        max_winners=3, seed=2,
    )
    log, _ = simulate(config)
    out = tmp_path_factory.mktemp("run")
    save_event_log(out / "event_log.json", log)
    return config, out, log


class TestLoadTrace:
    def test_from_file_dir_and_campaign(self, archived_run, tmp_path):
        _, out, log = archived_run
        assert len(load_trace(out / "event_log.json")) == len(log)
        assert len(load_trace(out)) == len(log)
        # Campaign layout: event logs nested under cell directories.
        nested = tmp_path / "camp" / "cells" / "cell-0"
        nested.mkdir(parents=True)
        (nested / "event_log.json").write_text(
            (out / "event_log.json").read_text()
        )
        assert len(load_trace(tmp_path / "camp")) == len(log)

    def test_missing_trace(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nothing")


class TestReplayTrace:
    def test_replay_reproduces_run(self, archived_run, tmp_path):
        config, out, log = archived_run
        trace = load_trace(out)
        handle = start_server_thread(directory=tmp_path / "svc")
        try:
            with ServiceClient("127.0.0.1", handle.port) as client:
                client.create_market("replayed", experiment=config.to_dict())
                stats = replay_trace(client, "replayed", trace)
                # Round boundaries preserved; allocations reproduced exactly.
                assert stats.rounds_sent == len(log)
                assert stats.rounds_closed == len(log)
                assert stats.bids_sent == sum(len(r.bids) for r in log)
                assert stats.bids_rejected == 0
                assert stats.rounds_with_allocations == sum(
                    1 for r in log if r.selected
                )
                assert stats.total_payment == pytest.approx(
                    sum(r.total_payment for r in log)
                )
                assert stats.bids_per_sec > 0
                for record, outcome in zip(log, client.outcomes("replayed")):
                    assert tuple(outcome["selected"]) == record.selected
        finally:
            handle.stop()

    def test_speedup_and_jitter_control_pacing(self, archived_run, tmp_path):
        config, out, _ = archived_run
        trace = load_trace(out)
        handle = start_server_thread(directory=tmp_path / "svc")
        try:
            with ServiceClient("127.0.0.1", handle.port) as client:
                client.create_market("paced", experiment=config.to_dict())
                stats = replay_trace(
                    client, "paced", trace,
                    speedup=200.0, interval=0.02, jitter=True, seed=7,
                    max_rounds=5,
                )
                assert stats.rounds_sent == 5
                # 4 inter-round gaps of ~0.02/200 s: fast but nonzero.
                assert stats.duration_s > 0
        finally:
            handle.stop()

    def test_stats_dict_round_trips(self, archived_run, tmp_path):
        import json

        config, out, _ = archived_run
        trace = load_trace(out)
        handle = start_server_thread(directory=tmp_path / "svc")
        try:
            with ServiceClient("127.0.0.1", handle.port) as client:
                client.create_market("s", experiment=config.to_dict())
                stats = replay_trace(client, "s", trace, max_rounds=3)
        finally:
            handle.stop()
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["rounds_sent"] == 3
        assert "bids_per_sec" in payload
