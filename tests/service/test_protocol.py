"""Tests for repro.service.protocol (the NDJSON frame layer)."""

import json

import pytest

from repro.service.protocol import (
    ERROR_TYPES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    require,
)


class TestFrames:
    def test_encode_decode_round_trip(self):
        frame = {"op": "bid", "client_id": 3, "cost": 0.25, "value": 1.5}
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert decode_frame(line) == frame

    def test_floats_survive_exactly(self):
        value = 0.1 + 0.2  # not representable prettily
        assert decode_frame(encode_frame({"v": value}))["v"] == value

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"this is not json\n")
        assert excinfo.value.error_type == "bad-frame"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"[1, 2, 3]\n")
        assert excinfo.value.error_type == "bad-frame"

    def test_rejects_oversized(self):
        line = b'{"pad": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(line)
        assert excinfo.value.error_type == "bad-frame"

    def test_ok_frame_shape(self):
        frame = ok_frame("ping", time=1.0)
        assert frame["ok"] is True
        assert frame["op"] == "ping"
        assert frame["time"] == 1.0

    def test_error_frame_shape(self):
        frame = error_frame(ProtocolError("unknown-market", "nope"), op="bid")
        assert frame["ok"] is False
        assert frame["op"] == "bid"
        assert frame["error"] == {"type": "unknown-market", "message": "nope"}
        # must serialise
        json.dumps(frame)

    def test_error_types_closed_vocabulary(self):
        with pytest.raises(ValueError):
            ProtocolError("made-up-type", "x")
        for error_type in ERROR_TYPES:
            assert ProtocolError(error_type, "x").error_type == error_type


class TestRequire:
    def test_missing_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            require({}, "market", str)
        assert excinfo.value.error_type == "bad-request"

    def test_wrong_type(self):
        with pytest.raises(ProtocolError):
            require({"market": 7}, "market", str)

    def test_bool_is_not_a_number(self):
        with pytest.raises(ProtocolError):
            require({"cost": True}, "cost", (int, float))

    def test_passes_through(self):
        assert require({"cost": 1.5}, "cost", (int, float)) == 1.5
        assert require({"market": "m"}, "market", str) == "m"
