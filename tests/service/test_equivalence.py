"""Served-vs-simulated equivalence: the service is the simulator, online.

A market fed an archived trail over a real socket must reproduce the
original :class:`~repro.simulation.runner.SimulationRunner` run
bit-identically — same allocations, same payments, same queue backlogs —
including across a server kill + snapshot-resume mid-horizon.  This is
the load-bearing guarantee of the service: moving the mechanism behind a
socket changes *nothing* about its decisions.
"""

import pytest

from repro.config import ExperimentConfig
from repro.mechanisms.registry import build_mechanism
from repro.rng import RngTree
from repro.service.client import ServiceClient
from repro.service.market import Market, MarketConfig
from repro.service.server import start_server_thread
from repro.simulation.runner import SimulationRunner
from repro.simulation.scenarios import build_mechanism_scenario

ROUNDS = 30


def simulate(config: ExperimentConfig):
    """The reference run — exactly the worker's execute_config wiring."""
    mechanism = build_mechanism(config)
    scenario = build_mechanism_scenario(config.num_clients, seed=config.seed)
    runner = SimulationRunner(
        mechanism,
        scenario.clients,
        scenario.valuation,
        presence=scenario.presence,
        network=scenario.network,
        seed=RngTree(config.seed).child_seed("orchestration/runner"),
    )
    log = runner.run(config.num_rounds)
    return log, mechanism


def feed_record(target, record):
    """Submit one archived round's bids (in original bid order) and close."""
    for client_id, cost in record.bids.items():
        target.submit(
            client_id=client_id, cost=cost, value=record.values[client_id]
        )
    return target.close()


class _MarketAdapter:
    def __init__(self, market):
        self.market = market

    def submit(self, **bid):
        self.market.submit_bid(bid)

    def close(self):
        return self.market.close_round(trigger="flush")


class _SocketAdapter:
    def __init__(self, client, name):
        self.client = client
        self.name = name

    def submit(self, **bid):
        self.client.bid(self.name, bid["client_id"], cost=bid["cost"],
                        value=bid["value"])

    def close(self):
        return self.client.flush(self.name)


def assert_round_equal(record, served):
    __tracebackhide__ = True
    assert served["round_index"] == record.round_index
    assert tuple(served["selected"]) == record.selected
    assert {int(c): p for c, p in served["payments"].items()} == record.payments
    # Queue state must track bit-for-bit, not approximately.
    for key in ("budget_backlog", "cost_weight", "total_payment"):
        if key in record.diagnostics:
            assert served["diagnostics"][key] == record.diagnostics[key]


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        num_clients=10,
        num_rounds=ROUNDS,
        v=10.0,
        budget_per_round=2.0,
        max_winners=4,
        seed=3,
    )


@pytest.fixture(scope="module")
def reference(config):
    return simulate(config)


class TestDirectEquivalence:
    def test_market_reproduces_simulation(self, config, reference):
        log, sim_mechanism = reference
        market = Market(MarketConfig("eq", config), None)
        for record in log:
            served = feed_record(_MarketAdapter(market), record)
            assert_round_equal(record, served)
        assert market.mechanism.budget_backlog == sim_mechanism.budget_backlog

    def test_with_participation_queues(self):
        config = ExperimentConfig(
            num_clients=8,
            num_rounds=20,
            v=8.0,
            budget_per_round=1.5,
            max_winners=3,
            participation_target=0.25,
            seed=11,
        )
        log, sim_mechanism = simulate(config)
        market = Market(MarketConfig("eq", config), None)
        for record in log:
            served = feed_record(_MarketAdapter(market), record)
            assert_round_equal(record, served)
            if "max_participation_backlog" in record.diagnostics:
                assert (
                    served["diagnostics"]["max_participation_backlog"]
                    == record.diagnostics["max_participation_backlog"]
                )


class TestSocketEquivalence:
    def test_socket_fed_market_bit_identical(self, config, reference, tmp_path):
        log, sim_mechanism = reference
        handle = start_server_thread(directory=tmp_path / "svc")
        try:
            with ServiceClient("127.0.0.1", handle.port) as client:
                client.create_market("eq", experiment=config.to_dict())
                feeder = _SocketAdapter(client, "eq")
                for record in log:
                    served = feed_record(feeder, record)
                    assert_round_equal(record, served)
                assert (
                    client.market("eq")["budget_backlog"]
                    == sim_mechanism.budget_backlog
                )
        finally:
            handle.stop()

    def test_kill_and_resume_mid_horizon(self, tmp_path):
        config = ExperimentConfig(
            num_clients=10,
            num_rounds=ROUNDS,
            v=10.0,
            budget_per_round=2.0,
            max_winners=4,
            participation_target=0.2,
            seed=5,
        )
        log, sim_mechanism = simulate(config)
        half = ROUNDS // 2

        handle = start_server_thread(directory=tmp_path / "svc")
        with ServiceClient("127.0.0.1", handle.port) as client:
            client.create_market("eq", experiment=config.to_dict())
            feeder = _SocketAdapter(client, "eq")
            for record in list(log)[:half]:
                assert_round_equal(record, feed_record(feeder, record))
        # Graceful stop snapshots the market (queue + participation state).
        handle.stop()
        assert not handle.thread.is_alive()

        resumed = start_server_thread(directory=tmp_path / "svc")
        try:
            with ServiceClient("127.0.0.1", resumed.port) as client:
                feeder = _SocketAdapter(client, "eq")
                for record in list(log)[half:]:
                    assert_round_equal(record, feed_record(feeder, record))
                assert (
                    client.market("eq")["budget_backlog"]
                    == sim_mechanism.budget_backlog
                )
        finally:
            resumed.stop()
