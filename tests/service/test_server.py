"""Socket-level tests of the auction server (lifecycle, failure modes)."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import start_server_thread

EXPERIMENT = {
    "num_clients": 8,
    "v": 10.0,
    "budget_per_round": 2.0,
    "max_winners": 3,
}


@pytest.fixture
def server(tmp_path):
    handle = start_server_thread(directory=tmp_path / "svc")
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServiceClient("127.0.0.1", server.port) as client:
        yield client


def create(client, name="alpha", **kwargs):
    return client.create_market(name, experiment=EXPERIMENT, **kwargs)


class TestLifecycle:
    def test_ping(self, client):
        assert client.ping()["markets"] == 0

    def test_create_and_list(self, client):
        create(client)
        rows = client.markets()
        assert [row["name"] for row in rows] == ["alpha"]
        assert rows[0]["mechanism"] == "lt-vcg"

    def test_create_twice_is_typed_error(self, client):
        create(client)
        with pytest.raises(ServiceError) as excinfo:
            create(client)
        assert excinfo.value.error_type == "market-exists"
        # exist_ok tolerates it
        assert create(client, exist_ok=True)["created"] is False

    def test_unknown_market(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.bid("nope", 0, cost=1.0, value=1.0)
        assert excinfo.value.error_type == "unknown-market"

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request({"op": "frobnicate"})
        assert excinfo.value.error_type == "unknown-op"

    def test_unknown_mechanism_is_bad_request(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.create_market("m", mechanism="not-a-mechanism")
        assert excinfo.value.error_type == "bad-request"


class TestRounds:
    def test_batch_trigger_closes_round(self, client):
        create(client, max_round_bids=3)
        client.bid("alpha", 0, cost=0.5, value=2.0)
        client.bid("alpha", 1, cost=0.6, value=2.0)
        response = client.bid("alpha", 2, cost=0.7, value=2.0)
        assert response["closed_round"] == 0
        outcomes = client.outcomes("alpha")
        assert len(outcomes) == 1
        assert outcomes[0]["trigger"] == "batch"
        assert outcomes[0]["selected"]

    def test_flush_closes_round(self, client):
        create(client)
        client.bid("alpha", 0, cost=0.5, value=2.0)
        outcome = client.flush("alpha")
        assert outcome["round_index"] == 0
        assert outcome["num_bids"] == 1

    def test_flush_with_no_bids_is_explicit_empty_outcome(self, client):
        create(client)
        outcome = client.flush("alpha")
        assert outcome["empty"] is True
        assert outcome["selected"] == []

    def test_timer_closes_rounds_even_when_idle(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            client.create_market(
                "timed", experiment=EXPERIMENT, round_timeout=0.05
            )
            client.bid("timed", 0, cost=0.5, value=2.0)
            import time

            deadline = time.time() + 5.0
            while time.time() < deadline:
                stats = client.market("timed")
                if stats["rounds_closed"] >= 2:
                    break
                time.sleep(0.02)
            outcomes = client.outcomes("timed")
            assert len(outcomes) >= 2
            assert outcomes[0]["trigger"] == "timer"
            assert outcomes[0]["num_bids"] == 1
            # The idle rounds closed as explicit empty outcomes, no hang.
            assert any(o.get("empty") for o in outcomes[1:])

    def test_bulk_bids_with_per_bid_verdicts(self, client):
        create(client)
        summary = client.send_bids(
            "alpha",
            [
                {"client_id": 0, "cost": 0.5, "value": 2.0},
                {"client_id": 0, "cost": 0.6, "value": 2.0},  # duplicate
                {"client_id": 1, "cost": -1.0, "value": 2.0},  # negative
                {"client_id": 2, "cost": 0.7, "value": 2.0},
            ],
        )
        assert summary["accepted"] == 2
        assert summary["rejected"] == 2
        verdicts = [entry["ok"] for entry in summary["results"]]
        assert verdicts == [True, False, False, True]
        assert summary["results"][1]["error"]["type"] == "bad-bid"


class TestHonestFailureModes:
    def test_malformed_frame_gets_typed_response_and_counter(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            client.create_market("alpha", experiment=EXPERIMENT)
            raw = client._sock
            raw.sendall(b"this is not json\n")
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "bad-frame"
            # The connection (and the server) survive; the frame is counted.
            assert client.ping()
            assert server.server.bad_frames == 1

    def test_non_object_frame(self, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            client._sock.sendall(b"[1,2,3]\n")
            response = json.loads(client._file.readline())
            assert response["error"]["type"] == "bad-frame"

    def test_rejected_bid_never_crashes_round_loop(self, client):
        create(client)
        with pytest.raises(ServiceError):
            client.bid("alpha", 0, cost=-5.0, value=1.0)
        client.bid("alpha", 0, cost=0.5, value=2.0)
        outcome = client.flush("alpha")
        assert outcome["num_bids"] == 1
        assert client.market("alpha")["bids_rejected"] == 1

    def test_each_connection_isolated(self, server):
        with ServiceClient("127.0.0.1", server.port) as a:
            a.create_market("alpha", experiment=EXPERIMENT)
            with socket.create_connection(("127.0.0.1", server.port)) as bad:
                bad.sendall(b"garbage\n")
                bad.recv(4096)
            assert a.ping()


class TestShutdownAndResume:
    def test_graceful_shutdown_snapshots_and_resumes(self, tmp_path):
        handle = start_server_thread(directory=tmp_path / "svc")
        with ServiceClient("127.0.0.1", handle.port) as client:
            client.create_market("alpha", experiment=EXPERIMENT)
            for cid in range(4):
                client.bid("alpha", cid, cost=1.5, value=5.0)
            client.flush("alpha")
            backlog = client.market("alpha")["budget_backlog"]
            assert backlog > 0
            client.shutdown()
        handle.thread.join(10)
        assert not handle.thread.is_alive()

        resumed = start_server_thread(directory=tmp_path / "svc")
        try:
            with ServiceClient("127.0.0.1", resumed.port) as client:
                stats = client.market("alpha")
                assert stats["budget_backlog"] == backlog
                assert stats["next_round_index"] == 1
        finally:
            resumed.stop()

    def test_handle_stop_is_graceful(self, tmp_path):
        handle = start_server_thread(directory=tmp_path / "svc")
        with ServiceClient("127.0.0.1", handle.port) as client:
            client.create_market("alpha", experiment=EXPERIMENT)
        handle.stop()
        assert (tmp_path / "svc" / "markets" / "alpha" / "snapshot.json").exists()
        events = [
            json.loads(line)["type"]
            for line in (tmp_path / "svc" / "events.jsonl").read_text().splitlines()
        ]
        assert events[0] == "server_started"
        assert events[-1] == "server_stopped"


class TestHttpShim:
    @pytest.fixture
    def http(self, tmp_path):
        handle = start_server_thread(directory=tmp_path / "svc", http_port=0)
        yield handle
        handle.stop()

    def test_get_markets_and_post_bid(self, http):
        port = http.server.http_bound_port
        with ServiceClient("127.0.0.1", http.port) as client:
            client.create_market("alpha", experiment=EXPERIMENT)
        body = json.loads(
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/markets", timeout=5
            ).read()
        )
        assert body["ok"] is True
        assert body["markets"][0]["name"] == "alpha"

        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/bid",
            data=json.dumps(
                {"market": "alpha", "client_id": 1, "cost": 0.5, "value": 2.0}
            ).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        body = json.loads(urllib.request.urlopen(request, timeout=5).read())
        assert body["ok"] is True
        assert body["pending"] == 1

    def test_typed_errors_map_to_status_codes(self, http):
        port = http.server.http_bound_port
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/frobnicate", timeout=5
            )
        assert excinfo.value.code == 404
        assert (
            json.loads(excinfo.value.read())["error"]["type"] == "unknown-op"
        )

        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/bid",
            data=b"not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
