"""Setuptools shim.

The project is configured in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on offline machines where the ``wheel`` package
(required by PEP 517 editable builds with older setuptools) is unavailable —
pip then falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
