"""Deployment playbook: calibrate, recruit, monitor — the operator workflow.

A realistic end-to-end walk-through of putting LT-VCG into production:

1. **Calibrate** the economic knobs from a survey of the device population
   (per-round budget, reserve price, posted-price sanity check).
2. **Configure** the mechanism: long-term budget, reserve cap, participation
   targets, and a UCB-learned valuation that discovers which clients
   actually move the model (instead of trusting declarations).
3. **Simulate a campaign** with unreliable uplinks (pay-on-delivery) over a
   hierarchical client/edge/cloud topology.
4. **Monitor**: budget compliance, realised truthful premium, fairness, and
   per-round wall-clock from the topology.

Usage::

    python examples/deployment_playbook.py
"""

import numpy as np

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.budget import budget_report
from repro.analysis.fairness import jain_index, participation_rates
from repro.core.quality_estimation import LearnedValuation
from repro.core.valuation import DiminishingReturnsValuation
from repro.economics.calibration import (
    premium_estimate,
    suggest_budget,
    suggest_posted_price,
    suggest_reserve_price,
)
from repro.economics.client_profile import build_population
from repro.simulation.topology import HierarchicalTopology
from repro.utils.tables import format_table

NUM_CLIENTS = 30
ROUNDS = 400
K = 8


def main() -> None:
    # --- 1. Calibration from the surveyed population -----------------------
    clients = build_population(
        NUM_CLIENTS,
        seed=11,
        energy_constrained=False,
        delivery_reliability_range=(0.85, 1.0),
    )
    budget = suggest_budget(clients, K, premium_factor=1.4)
    reserve = suggest_reserve_price(clients, quantile=0.9)
    posted = suggest_posted_price(clients, expected_acceptors=K)
    print(
        format_table(
            ["knob", "suggested value"],
            [
                ["per-round budget B", budget],
                ["reserve price", reserve],
                ["(posted price for comparison)", posted],
            ],
            title="Calibration from the device survey",
        )
    )

    # --- 2. Mechanism + learned valuation ----------------------------------
    mechanism = LongTermVCGMechanism(
        LongTermVCGConfig(
            v=25.0,
            budget_per_round=budget,
            max_winners=K,
            participation_targets={cid: 0.15 for cid in range(NUM_CLIENTS)},
            sustainability_weight=3.0,
            reserve_price=reserve,
        )
    )
    valuation = LearnedValuation(
        DiminishingReturnsValuation(scale=1.0, reference_size=100),
        blend=0.5,
        bonus=0.3,
        optimistic_value=1.5,
    )

    # --- 3. The campaign ----------------------------------------------------
    runner = SimulationRunner(mechanism, clients, valuation, seed=13)
    log = runner.run(ROUNDS)

    # --- 4. Monitoring ------------------------------------------------------
    report = budget_report(log, budget)
    rates = list(participation_rates(log, list(range(NUM_CLIENTS))).values())
    failures = sum(len(r.failed) for r in log)
    wins = sum(len(r.selected) for r in log)

    topology = HierarchicalTopology.random(
        list(range(NUM_CLIENTS)), num_edges=4, rng=np.random.default_rng(17)
    )
    durations = [
        topology.round_duration(record.selected) for record in log if record.selected
    ]

    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["rounds", len(log)],
                ["total welfare", log.total_welfare()],
                ["avg spend / budget", report.final_overspend_ratio],
                ["budget compliant", report.compliant],
                ["realised truthful premium", premium_estimate(log)],
                ["participation Jain index", jain_index(rates)],
                ["delivered / attempted wins", f"{wins}/{wins + failures}"],
                ["median round duration (s)", float(np.median(durations))],
                ["p95 round duration (s)", float(np.quantile(durations, 0.95))],
            ],
            title=f"Campaign health after {ROUNDS} rounds",
        )
    )


if __name__ == "__main__":
    main()
