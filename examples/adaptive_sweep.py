"""Adaptive sweep: successive halving over a mechanism grid.

Instead of giving every grid arm the full round budget, run the grid as a
tournament: every (mechanism, scenario, params) arm gets a short budget,
the scheduler ranks arms on a stored metric from their ``cell_finished``
events, early-stops the dominated half, and doubles the survivors' budget
each rung.  Dominated mechanisms cost ``min_rounds`` rounds instead of the
full budget — with 6 arms and 3 rungs below, the tournament simulates
roughly half the rounds of the equivalent full-factorial campaign.

Every rung is an ordinary resumable campaign under
``results/adaptive_sweep/rungs/<rung>/<arm>``; kill the script whenever
and rerun it — finished cells are never re-simulated.  Any execution
backend works (pass ``backend="work-queue"`` and start
``python -m repro.cli work`` drainers to shard the rungs across machines).

Usage::

    python examples/adaptive_sweep.py
"""

from repro import ExperimentConfig
from repro.orchestration import (
    SuccessiveHalvingScheduler,
    SweepSpec,
    run_successive_halving,
)

CAMPAIGN_DIR = "results/adaptive_sweep"


def main() -> None:
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=30, max_winners=8, budget_per_round=2.0, v=15.0
        ),
        mechanisms=(
            "lt-vcg", "lt-vcg-greedy", "myopic-vcg",
            "prop-share", "greedy-first-price", "random",
        ),
        seeds=(0, 1, 2),
        name="adaptive-example",
    )
    result = run_successive_halving(
        spec,
        CAMPAIGN_DIR,
        scheduler=SuccessiveHalvingScheduler(metric="total_welfare", eta=2),
        num_rungs=3,
        min_rounds=50,  # rung budgets: 50, 100, 200 rounds
    )

    for rung in result.rungs:
        print(f"rung {rung.index} ({rung.num_rounds} rounds):")
        for arm in rung.scores:
            survived = "->" if arm.label in rung.survivors else "  "
            print(f"  {survived} {arm.label:45s} "
                  f"{result.metric}={arm.score:.3f} (n={arm.cells})")
    print(
        f"\nwinner: {result.winner.label} "
        f"({result.metric}={result.winner.score:.3f}) "
        f"after {result.total_cells} cells"
    )


if __name__ == "__main__":
    main()
