"""Budget pacing: choosing V for a deployment.

Sweeps the Lyapunov parameter V and shows the two quantities a deployment
trades off: welfare captured (rises with V, saturating) and the transient
budget debt Q(t) (grows with V).  Also prints one Q(t) trajectory so the
"overshoot then drain" dynamic is visible.

Usage::

    python examples/budget_pacing.py
"""

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.budget import budget_report
from repro.analysis.welfare import welfare_summary
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_series, format_table

NUM_CLIENTS = 40
ROUNDS = 600
K = 10
BUDGET = 2.0
V_GRID = (1.0, 5.0, 20.0, 100.0, 500.0)


def main() -> None:
    rows = []
    sample_history = None
    for v in V_GRID:
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=v, budget_per_round=BUDGET, max_winners=K)
        )
        scenario = build_mechanism_scenario(NUM_CLIENTS, seed=9)
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=10
        ).run(ROUNDS)
        summary = welfare_summary(log)
        report = budget_report(log, BUDGET)
        queue = mechanism.controller.queue
        rows.append(
            [
                v,
                summary.total_welfare,
                report.average_spend,
                max(queue.history),
                queue.backlog,
                report.compliant,
            ]
        )
        if v == 20.0:
            sample_history = list(queue.history)

    print(
        format_table(
            ["V", "welfare", "avg spend", "peak Q", "final Q", "compliant"],
            rows,
            title=f"V sweep — budget {BUDGET}/round, {ROUNDS} rounds",
        )
    )
    print()
    assert sample_history is not None
    print(
        format_series(
            list(range(len(sample_history))),
            {"Q(t)": sample_history},
            x_label="round",
            title="Virtual-queue trajectory at V=20 (overshoot, then drain)",
            max_points=15,
        )
    )


if __name__ == "__main__":
    main()
