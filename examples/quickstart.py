"""Quickstart: run the LT-VCG auction for 300 rounds and inspect the outcome.

This is the smallest end-to-end use of the public API: build a seeded
economic scenario, construct the mechanism, simulate, and print the headline
numbers.  Runs in about a second.

Usage::

    python examples/quickstart.py
"""

from repro import (
    LongTermVCGConfig,
    LongTermVCGMechanism,
    SimulationRunner,
    build_mechanism_scenario,
    icdcs_defaults,
)
from repro.analysis.budget import budget_report
from repro.analysis.welfare import welfare_summary
from repro.utils.tables import format_series


def main() -> None:
    defaults = icdcs_defaults()

    # 1. A seeded scenario: 40 heterogeneous clients (device classes, data
    #    declarations, truthful bidding) plus the server-side valuation model.
    scenario = build_mechanism_scenario(defaults["num_clients"], seed=0)

    # 2. The mechanism: online VCG with a long-term budget of 5 money units
    #    per round enforced through the Lyapunov virtual queue.
    mechanism = LongTermVCGMechanism(
        LongTermVCGConfig(
            v=defaults["v"],
            budget_per_round=defaults["budget_per_round"],
            max_winners=defaults["max_winners"],
        )
    )

    # 3. Simulate.
    runner = SimulationRunner(mechanism, scenario.clients, scenario.valuation, seed=1)
    log = runner.run(defaults["num_rounds"])

    # 4. Inspect.
    summary = welfare_summary(log)
    budget = budget_report(log, defaults["budget_per_round"])
    print("LT-VCG quickstart")
    print(f"  rounds:             {summary.rounds}")
    print(f"  total welfare:      {summary.total_welfare:.1f}")
    print(f"  winners per round:  {summary.winners_per_round:.2f}")
    print(f"  avg spend / budget: {budget.average_spend:.3f} / {budget.budget_per_round}")
    print(f"  budget compliant:   {budget.compliant}")
    print(f"  final queue backlog Q(T): {mechanism.budget_backlog:.3f}")
    print()
    print(
        format_series(
            log.round_indices(),
            {
                "cumulative welfare": log.cumulative(log.welfare_series()),
                "cumulative spend": log.cumulative(log.payment_series()),
            },
            x_label="round",
            title="Trajectories",
            max_points=10,
        )
    )


if __name__ == "__main__":
    main()
