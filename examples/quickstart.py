"""Quickstart: a two-mechanism mini-campaign through the orchestration API.

The smallest end-to-end use of the public API: declare a sweep grid
(LT-VCG vs. random selection, one seed), run it as a resumable campaign,
and print the headline comparison plus the LT-VCG budget trajectory from
the archived event log.  Runs in about a second; rerunning the script
resumes the campaign directory and skips the already-finished cells.

Usage::

    python examples/quickstart.py
"""

from pathlib import Path

from repro import ExperimentConfig, icdcs_defaults
from repro.analysis.budget import budget_report
from repro.orchestration import (
    SweepSpec,
    load_results,
    run_campaign,
    welfare_comparison_table,
)
from repro.simulation.replay import load_event_log
from repro.utils.tables import format_series

CAMPAIGN_DIR = Path("results/quickstart_campaign")


def main() -> None:
    defaults = icdcs_defaults()

    # 1. Declare the grid: every cell starts from the canonical ICDCS
    #    parameters; the mechanism axis is the only thing that varies.
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=defaults["num_clients"],
            num_rounds=defaults["num_rounds"],
            max_winners=defaults["max_winners"],
            v=defaults["v"],
            budget_per_round=defaults["budget_per_round"],
        ),
        mechanisms=("lt-vcg", "random"),
        seeds=(0,),
        name="quickstart",
    )

    # 2. Run it.  Completed cells are persisted as they finish, so a rerun
    #    of this script skips them (try it: run the script twice).
    summary = run_campaign(spec, CAMPAIGN_DIR, max_workers=0)
    print(
        f"campaign: {summary.completed} cells run, "
        f"{summary.skipped} skipped (already done)\n"
    )

    # 3. Compare from the stored results — no re-simulation.
    results = load_results(CAMPAIGN_DIR)
    print(welfare_comparison_table(results, by=("mechanism",)))
    print()

    # 4. Full per-round detail stays available: reload LT-VCG's event log.
    lt_vcg = next(r for r in results if r.mechanism == "lt-vcg" and r.completed)
    log = load_event_log(lt_vcg.event_log_path)
    budget = budget_report(log, defaults["budget_per_round"])
    print(f"LT-VCG avg spend / budget: {budget.average_spend:.3f} / "
          f"{budget.budget_per_round} (compliant: {budget.compliant})")
    print(
        format_series(
            log.round_indices(),
            {
                "cumulative welfare": log.cumulative(log.welfare_series()),
                "cumulative spend": log.cumulative(log.payment_series()),
            },
            x_label="round",
            title="LT-VCG trajectories",
            max_points=10,
        )
    )


if __name__ == "__main__":
    main()
