"""A full sweep campaign: 4 mechanisms × 2 scenarios × 3 seeds, in parallel.

Demonstrates the complete orchestration workflow behind the paper's
comparison tables:

1. declare the grid (24 cells) as one :class:`~repro.orchestration.SweepSpec`,
2. fan it across worker processes with :func:`~repro.orchestration.run_campaign`
   — every completed cell is checkpointed into the campaign's SQLite store
   the moment it finishes,
3. interrupt it whenever you like (Ctrl-C) and rerun this script or
   ``python -m repro.cli resume results/sweep_campaign`` — finished cells
   are never re-simulated,
4. aggregate the stored metrics into E2-style welfare tables, grouped by
   any axis.

The same campaign from the shell::

    python -m repro.cli sweep --out results/sweep_campaign \\
        --mechanisms lt-vcg,myopic-vcg,prop-share,random \\
        --scenarios mechanism,energy --seeds 0,1,2 \\
        --rounds 200 --clients 30 --budget 2.0 --v 15.0 --max-winners 8
    python -m repro.cli report results/sweep_campaign --logs

Execution is pluggable (``run_campaign(backend=...)`` / ``--backend``):
``inline`` for debugging, ``thread``/``process`` pools on one host, or
``work-queue`` to shard the campaign across any number of
``python -m repro.cli work results/sweep_campaign`` drainer processes —
on this or any machine sharing the directory.  While it runs, tail the
live dashboard from another terminal::

    python -m repro.cli watch results/sweep_campaign

For million-cell campaigns pass ``store="columnar"`` (one compressed NPZ
instead of SQLite+JSONL); resume/report sniff the store automatically.

Usage::

    python examples/sweep_campaign.py
"""

from pathlib import Path

from repro import ExperimentConfig
from repro.orchestration import (
    SweepSpec,
    aggregate_metric,
    campaign_report,
    load_results,
    run_campaign,
)

CAMPAIGN_DIR = Path("results/sweep_campaign")


def main() -> None:
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=30,
            num_rounds=200,
            max_winners=8,
            budget_per_round=2.0,
            v=15.0,
        ),
        mechanisms=("lt-vcg", "myopic-vcg", "prop-share", "random"),
        scenarios=("mechanism", "energy"),
        seeds=(0, 1, 2),
        name="sweep-campaign-example",
    )
    print(f"campaign {spec.name!r}: {spec.num_cells} cells")

    def progress(outcome, done, total):
        print(f"  [{done}/{total}] {outcome['cell_id']}: {outcome['status']}")

    summary = run_campaign(spec, CAMPAIGN_DIR, progress=progress)
    print(
        f"\n{summary.completed} completed, {summary.skipped} skipped, "
        f"{summary.failed} failed"
    )

    # The stored rows answer axis-level questions without re-simulating:
    # does LT-VCG's welfare edge survive the energy-constrained scenario?
    results = load_results(CAMPAIGN_DIR)
    for key, stats in aggregate_metric(
        results, "total_welfare", by=("mechanism", "scenario")
    ).items():
        print(f"  welfare {' / '.join(key):28s} {stats}")

    print()
    print(campaign_report(CAMPAIGN_DIR, include_event_logs=True))


if __name__ == "__main__":
    main()
