"""Strategic bidders: why the payment rule matters.

Every client runs a no-regret learner (Hedge over markup factors) that
adjusts its bidding markup from realised utility.  Under LT-VCG the learned
markups collapse back to ~1.0 — misreporting simply doesn't pay, so the
server keeps seeing true costs.  Under pay-as-bid greedy the same learners
drift upward and the server's costs inflate.  This is truthfulness measured
*behaviourally* rather than by a one-shot deviation check (compare
benchmark E5).

Usage::

    python examples/strategic_bidders.py
"""

import numpy as np

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.economics.bidding import AdaptiveStrategy
from repro.mechanisms import GreedyFirstPriceMechanism
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

NUM_CLIENTS = 20
ROUNDS = 600
K = 6
BUDGET = 3.0


def run(mechanism):
    scenario = build_mechanism_scenario(
        NUM_CLIENTS,
        seed=21,
        strategy_factory=lambda cid, rng: AdaptiveStrategy(learning_rate=0.4),
    )
    log = SimulationRunner(
        mechanism, scenario.clients, scenario.valuation, seed=5
    ).run(ROUNDS)
    factors = [c.strategy.expected_factor() for c in scenario.clients]
    return log, factors


def main() -> None:
    lt_log, lt_factors = run(
        LongTermVCGMechanism(
            LongTermVCGConfig(v=30.0, budget_per_round=BUDGET, max_winners=K)
        )
    )
    fp_log, fp_factors = run(GreedyFirstPriceMechanism(BUDGET, K))

    rows = [
        [
            "lt-vcg",
            float(np.mean(lt_factors)),
            float(np.max(lt_factors)),
            lt_log.total_payment(),
            lt_log.total_welfare(),
        ],
        [
            "greedy-first-price",
            float(np.mean(fp_factors)),
            float(np.max(fp_factors)),
            fp_log.total_payment(),
            fp_log.total_welfare(),
        ],
    ]
    print(
        format_table(
            [
                "mechanism",
                "mean learned markup",
                "max learned markup",
                "total paid",
                "true welfare",
            ],
            rows,
            title=f"Adaptive bidders after {ROUNDS} rounds",
        )
    )
    print()
    print(
        "Under the truthful mechanism the learners stay near markup 1.0;\n"
        "under pay-as-bid they discover that inflating bids pays."
    )


if __name__ == "__main__":
    main()
