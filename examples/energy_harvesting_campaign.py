"""A sustainable sensing campaign: 500 rounds on harvested energy.

Thirty battery-powered devices harvest ambient energy (RF, kinetic, solar —
one process per device) and can only bid when charged.  The example
contrasts LT-VCG with participation queues against the cost-greedy
recruiter: the greedy one repeatedly drains the cheapest devices while
starving the rest; the queues keep the whole fleet alive at its target
participation rate.

Usage::

    python examples/energy_harvesting_campaign.py
"""

import numpy as np

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.fairness import jain_index, participation_rates, starvation_count
from repro.mechanisms import GreedyFirstPriceMechanism
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

NUM_CLIENTS = 30
ROUNDS = 500
K = 8
BUDGET = 2.5
TARGET_RATE = 0.15


def run(with_queues: bool | None):
    """with_queues=None runs the greedy baseline instead of LT-VCG."""
    if with_queues is None:
        mechanism = GreedyFirstPriceMechanism(BUDGET, K)
    else:
        targets = {cid: TARGET_RATE for cid in range(NUM_CLIENTS)} if with_queues else None
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(
                v=20.0,
                budget_per_round=BUDGET,
                max_winners=K,
                participation_targets=targets,
                sustainability_weight=5.0,
            )
        )
    scenario = build_mechanism_scenario(
        NUM_CLIENTS, seed=3, energy_constrained=True
    )
    log = SimulationRunner(
        mechanism, scenario.clients, scenario.valuation, seed=4
    ).run(ROUNDS)
    return log, scenario


def main() -> None:
    runs = {
        "lt-vcg + participation queues": run(True),
        "lt-vcg (no queues)": run(False),
        "greedy-first-price": run(None),
    }

    ids = list(range(NUM_CLIENTS))
    rows = []
    for name, (log, scenario) in runs.items():
        rates = participation_rates(log, ids)
        final = log.records[-1].battery_levels
        capacities = {c.client_id: c.battery.capacity for c in scenario.clients}
        rows.append(
            [
                name,
                log.total_welfare(),
                jain_index(list(rates.values())),
                starvation_count(log, ids, minimum_rate=0.05),
                float(np.mean([final[c] / capacities[c] for c in ids])),
            ]
        )
    print(
        format_table(
            ["mechanism", "welfare", "jain fairness", "starved devices", "mean battery"],
            rows,
            title=f"{ROUNDS}-round harvesting campaign, {NUM_CLIENTS} devices",
        )
    )

    log, _ = runs["lt-vcg + participation queues"]
    rates = participation_rates(log, ids)
    buckets = {"<5%": 0, "5-10%": 0, "10-20%": 0, ">=20%": 0}
    for rate in rates.values():
        if rate < 0.05:
            buckets["<5%"] += 1
        elif rate < 0.10:
            buckets["5-10%"] += 1
        elif rate < 0.20:
            buckets["10-20%"] += 1
        else:
            buckets[">=20%"] += 1
    print()
    print(
        format_table(
            ["participation-rate bucket", "devices"],
            [[k, v] for k, v in buckets.items()],
            title=f"Participation spread under the queues (target {TARGET_RATE:.0%})",
        )
    )


if __name__ == "__main__":
    main()
