"""Auction-driven federated learning on the synthetic image task.

The scenario the paper's introduction motivates: a server trains an image
classifier over 30 phones/edge devices holding non-IID shards, recruiting
participants each round through the LT-VCG auction under a long-term
incentive budget, and compares the learning curve against random selection
with the same winner cap.

Usage::

    python examples/federated_image_classification.py
"""

import numpy as np

from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.reporting import accuracy_table
from repro.mechanisms import RandomSelectionMechanism
from repro.simulation.scenarios import build_fl_scenario
from repro.utils.tables import format_series

NUM_CLIENTS = 30
ROUNDS = 120
K = 8
BUDGET = 4.0


def run(mechanism_name: str):
    if mechanism_name == "lt-vcg":
        # Coverage signals (participation targets + staleness-aware values)
        # keep the auction from over-sampling a few cheap clients under
        # label-skewed data.
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(
                v=30.0, budget_per_round=BUDGET, max_winners=K,
                participation_targets={cid: 0.2 for cid in range(NUM_CLIENTS)},
                sustainability_weight=5.0,
            )
        )
    else:
        mechanism = RandomSelectionMechanism(K, np.random.default_rng(1))
    # Same seed -> identical dataset, shards, costs for a fair comparison.
    scenario = build_fl_scenario(
        NUM_CLIENTS, seed=7, num_samples=6000, dirichlet_alpha=0.5, eval_every=10,
        staleness_boost=1.0 if mechanism_name == "lt-vcg" else 0.0,
    )
    runner = SimulationRunner(
        mechanism, scenario.clients, scenario.valuation, fl=scenario.fl, seed=2
    )
    return runner.run(ROUNDS)


def main() -> None:
    logs = {name: run(name) for name in ("lt-vcg", "random")}

    xs, _ = logs["lt-vcg"].accuracy_series()
    curves = {}
    for name, log in logs.items():
        log_xs, ys = log.accuracy_series()
        aligned = dict(zip(log_xs, ys))
        curves[name] = [aligned.get(x, float("nan")) for x in xs]

    print(
        format_series(
            xs, curves, x_label="round",
            title="Global test accuracy (Dirichlet-0.5 non-IID images)",
            max_points=13,
        )
    )
    print()
    print(accuracy_table(logs, targets=(0.4, 0.5)))
    print()
    for name, log in logs.items():
        print(
            f"{name}: spent {log.total_payment():.1f} total "
            f"({log.average_payment():.2f}/round against budget {BUDGET})"
        )


if __name__ == "__main__":
    main()
