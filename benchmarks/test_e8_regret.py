"""E8 [reconstructed]: regret against the hindsight optimum vs. horizon.

Figure analogue: per-round regret of LT-VCG against the clairvoyant offline
plan (same realised instance, same total budget) as the horizon grows.
Expected shape: the offline planner pays winners exactly their cost, while
the truthful online mechanism must pay information rents out of the same
budget — so per-round regret does not vanish; it *converges to a bounded
constant* (the price of truthfulness plus the O(V)/T transient), and the
online mechanism retains a constant fraction of the offline welfare.  At
short horizons the transient overspend makes LT-VCG look closer to the
optimum than its steady state; the curve flattens as T grows.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.regret import regret_against_plan
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

SEED = 91
NUM_CLIENTS = 30
K = 8
BUDGET = 2.0
V = 20.0
HORIZONS = (50, 100, 200, 400, 800)


def run_all():
    points = []
    for horizon in HORIZONS:
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=BUDGET, max_winners=K)
        )
        scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=29
        ).run(horizon)
        points.append(
            regret_against_plan(log, budget_per_round=BUDGET, max_winners=K)
        )
    return points


def test_e8_regret(benchmark, report):
    points = run_once(benchmark, run_all)

    text = format_table(
        ["horizon", "online_welfare", "offline_welfare", "regret", "regret/round"],
        [
            [p.horizon, p.online_welfare, p.offline_welfare, p.regret, p.per_round_regret]
            for p in points
        ],
        title="Regret vs. hindsight optimum (same instance, same total budget)",
    )
    report("e8_regret", text)

    # Shape: regret is non-negative at every horizon.
    for p in points:
        assert p.regret >= -1e-6
    # Per-round regret converges: the change between the two longest
    # horizons is small relative to its level (bounded constant gap).
    last, previous = points[-1].per_round_regret, points[-2].per_round_regret
    assert abs(last - previous) <= 0.3 * max(last, previous)
    # Online welfare retains a constant fraction of the offline optimum.
    assert points[-1].online_welfare >= 0.6 * points[-1].offline_welfare
