"""E2 [reconstructed]: cumulative social welfare vs. rounds.

Figure analogue: long-run welfare trajectories per mechanism under the same
binding long-term budget.  Expected shape: LT-VCG accumulates the most
welfare among budget-respecting mechanisms because it paces spend across
rounds instead of enforcing the budget per round; pay-as-bid greedy looks
efficient only because clients here bid truthfully (E5 removes that
illusion); random selection buys negative-welfare clients.

Runs through :mod:`repro.orchestration` (like E11): one declarative
5-mechanism campaign whose cells archive their full event logs — the
welfare curves are read back from the archived logs, and the stateless
baselines exercise the batched worker path (a whole cell's rounds through
one :meth:`~repro.core.mechanism.Mechanism.run_rounds` batch).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from benchmarks.conftest import run_once
from repro.analysis.reporting import mechanism_comparison_table, payment_table
from repro.config import ExperimentConfig
from repro.orchestration import SweepSpec, load_results, run_campaign
from repro.simulation.replay import load_event_log
from repro.utils.tables import format_series

SEED = 7
NUM_CLIENTS = 40
ROUNDS = 400
K = 10
BUDGET = 2.5  # binding: unconstrained VCG spend here is ~2x this
V = 25.0

MECHANISMS = (
    "lt-vcg",
    "myopic-vcg",
    "prop-share",
    "greedy-first-price",
    "random",
)


def run_all():
    """Run the campaign; returns mechanism -> EventLog from archived cells."""
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=NUM_CLIENTS,
            num_rounds=ROUNDS,
            max_winners=K,
            budget_per_round=BUDGET,
            v=V,
            seed=SEED,
        ),
        mechanisms=MECHANISMS,
        seeds=(SEED,),
        name="e2-social-welfare",
    )
    with tempfile.TemporaryDirectory() as campaign_dir:
        summary = run_campaign(spec, campaign_dir, max_workers=0)
        assert summary.failed == 0, "e2 campaign had failed cells"
        logs = {}
        for result in load_results(campaign_dir):
            assert result.completed and result.event_log_path is not None
            logs[result.mechanism] = load_event_log(Path(result.event_log_path))
    return {name: logs[name] for name in MECHANISMS}


def test_e2_social_welfare(benchmark, report):
    logs = run_once(benchmark, run_all)

    xs = logs["lt-vcg"].round_indices()
    curves = {
        name: log.cumulative(log.welfare_series()) for name, log in logs.items()
    }
    text = format_series(
        xs, curves, x_label="round",
        title="Cumulative social welfare vs. rounds", max_points=16,
    )
    text += "\n\n" + mechanism_comparison_table(
        logs, budget_per_round=BUDGET, client_ids=list(range(NUM_CLIENTS))
    )
    text += "\n\n" + payment_table(logs)
    report("e2_social_welfare", text)

    totals = {name: log.total_welfare() for name, log in logs.items()}
    # Shape: LT-VCG beats random decisively and beats the hard per-round
    # budget baseline (prop-share) under the same long-term budget.
    assert totals["lt-vcg"] > totals["random"]
    # Myopic VCG ignores the budget entirely — an upper bound on welfare.
    assert totals["myopic-vcg"] >= totals["lt-vcg"] - 1e-6
