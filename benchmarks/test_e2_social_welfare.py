"""E2 [reconstructed]: cumulative social welfare vs. rounds.

Figure analogue: long-run welfare trajectories per mechanism under the same
binding long-term budget.  Expected shape: LT-VCG accumulates the most
welfare among budget-respecting mechanisms because it paces spend across
rounds instead of enforcing the budget per round; pay-as-bid greedy looks
efficient only because clients here bid truthfully (E5 removes that
illusion); random selection buys negative-welfare clients.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.reporting import mechanism_comparison_table, payment_table
from repro.mechanisms import (
    GreedyFirstPriceMechanism,
    MyopicVCGMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_series

SEED = 7
NUM_CLIENTS = 40
ROUNDS = 400
K = 10
BUDGET = 2.5  # binding: unconstrained VCG spend here is ~2x this
V = 25.0


def make_mechanisms():
    return {
        "lt-vcg": LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=BUDGET, max_winners=K)
        ),
        "myopic-vcg": MyopicVCGMechanism(max_winners=K),
        "prop-share": ProportionalShareMechanism(BUDGET, K),
        "greedy-first-price": GreedyFirstPriceMechanism(BUDGET, K),
        "random": RandomSelectionMechanism(K, np.random.default_rng(3)),
    }


def run_all():
    logs = {}
    for name, mechanism in make_mechanisms().items():
        scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
        runner = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=13
        )
        logs[name] = runner.run(ROUNDS)
    return logs


def test_e2_social_welfare(benchmark, report):
    logs = run_once(benchmark, run_all)

    xs = logs["lt-vcg"].round_indices()
    curves = {
        name: log.cumulative(log.welfare_series()) for name, log in logs.items()
    }
    text = format_series(
        xs, curves, x_label="round",
        title="Cumulative social welfare vs. rounds", max_points=16,
    )
    text += "\n\n" + mechanism_comparison_table(
        logs, budget_per_round=BUDGET, client_ids=list(range(NUM_CLIENTS))
    )
    text += "\n\n" + payment_table(logs)
    report("e2_social_welfare", text)

    totals = {name: log.total_welfare() for name, log in logs.items()}
    # Shape: LT-VCG beats random decisively and beats the hard per-round
    # budget baseline (prop-share) under the same long-term budget.
    assert totals["lt-vcg"] > totals["random"]
    # Myopic VCG ignores the budget entirely — an upper bound on welfare.
    assert totals["myopic-vcg"] >= totals["lt-vcg"] - 1e-6
