"""E1 [reconstructed]: test accuracy vs. global rounds, LT-VCG vs. baselines.

Figure analogue: learning curves of the global model when client selection
is driven by each mechanism, on the non-IID synthetic image task.  The
paper family's headline FL result: LT-VCG (with its coverage signals —
staleness-aware valuation plus participation-rate queues) matches or beats
uniform-random selection on accuracy while spending *less*, budget-
controlled money; pure value-greedy selection without the coverage signals
over-samples a few clients and loses accuracy under label skew, and the
hard per-round-budget baseline recruits too few clients per round.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.reporting import accuracy_table, mechanism_comparison_table
from repro.mechanisms import (
    AllAvailableMechanism,
    GreedyFirstPriceMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)
from repro.simulation.scenarios import build_fl_scenario
from repro.utils.tables import format_series

SEED = 42
NUM_CLIENTS = 30
ROUNDS = 150
K = 8
BUDGET = 4.0
V = 30.0


def make_mechanisms():
    targets = {cid: 0.2 for cid in range(NUM_CLIENTS)}
    return {
        "lt-vcg": LongTermVCGMechanism(
            LongTermVCGConfig(
                v=V, budget_per_round=BUDGET, max_winners=K,
                participation_targets=targets, sustainability_weight=5.0,
            )
        ),
        "lt-vcg (no coverage)": LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=BUDGET, max_winners=K)
        ),
        "prop-share": ProportionalShareMechanism(BUDGET, K),
        "greedy-first-price": GreedyFirstPriceMechanism(BUDGET, K),
        "random": RandomSelectionMechanism(K, np.random.default_rng(7)),
        "oracle-all": AllAvailableMechanism(),
    }


def run_all():
    logs = {}
    for name, mechanism in make_mechanisms().items():
        scenario = build_fl_scenario(
            NUM_CLIENTS,
            seed=SEED,
            num_samples=6000,
            dirichlet_alpha=0.5,
            eval_every=10,
            staleness_boost=1.0 if name == "lt-vcg" else 0.0,
        )
        runner = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, fl=scenario.fl, seed=5
        )
        logs[name] = runner.run(ROUNDS)
    return logs


def test_e1_accuracy_vs_rounds(benchmark, report):
    logs = run_once(benchmark, run_all)

    # Align accuracy curves on the shared evaluation grid.
    xs, _ = logs["lt-vcg"].accuracy_series()
    curves = {}
    for name, log in logs.items():
        log_xs, ys = log.accuracy_series()
        aligned = dict(zip(log_xs, ys))
        curves[name] = [aligned.get(x, float("nan")) for x in xs]

    text = format_series(
        xs, curves, x_label="round", title="Test accuracy vs. global rounds",
        max_points=16,
    )
    text += "\n\n" + accuracy_table(logs, targets=(0.4, 0.5))
    text += "\n\n" + mechanism_comparison_table(
        logs, budget_per_round=BUDGET, client_ids=list(range(NUM_CLIENTS))
    )
    report("e1_accuracy_vs_rounds", text)

    # Shape assertions.
    finals = {name: log.accuracy_series()[1][-1] for name, log in logs.items()}
    spends = {name: log.average_payment() for name, log in logs.items()}
    assert finals["lt-vcg"] > 0.45
    # Coverage-aware LT-VCG matches random selection's accuracy while
    # spending less budget-controlled money.
    assert finals["lt-vcg"] >= finals["random"] - 0.03
    assert spends["lt-vcg"] < spends["random"]
    # The coverage signals are what close the accuracy gap.
    assert finals["lt-vcg"] >= finals["lt-vcg (no coverage)"] - 0.02
    assert finals["oracle-all"] >= finals["random"] - 0.05
