"""Shared infrastructure for the benchmark harness.

Every benchmark prints its paper-style table/series through :func:`report`,
which bypasses pytest's capture (so ``pytest benchmarks/ --benchmark-only``
shows the regenerated tables inline) and archives the text under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Print experiment output unbuffered and archive it to results/."""

    def emit(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n=== {experiment_id} ===")
            print(text)

    return emit


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark.

    Simulation benchmarks are deterministic and expensive; statistical
    repetition adds nothing, so a single timed round is recorded.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
