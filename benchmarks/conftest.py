"""Shared infrastructure for the benchmark harness.

Every benchmark prints its paper-style table/series through :func:`report`,
which bypasses pytest's capture (so ``pytest benchmarks/ --benchmark-only``
shows the regenerated tables inline) and archives the text under
``benchmarks/results/`` for EXPERIMENTS.md.  A benchmark that also wants a
machine-readable perf trail passes ``json_payload`` — archived as
``results/BENCH_<id>.json`` so the numbers can be diffed across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Print experiment output unbuffered and archive it to results/."""

    def emit(
        experiment_id: str,
        text: str,
        *,
        json_payload: dict | None = None,
        json_id: str | None = None,
        archive: bool = True,
    ) -> None:
        """``archive=False`` prints without touching results/ — for smoke
        runs on reduced configurations that must not overwrite the
        committed full-sweep baselines."""
        if archive:
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
            if json_payload is not None:
                json_path = RESULTS_DIR / f"BENCH_{json_id or experiment_id}.json"
                json_path.write_text(json.dumps(json_payload, indent=2) + "\n")
        with capsys.disabled():
            print(f"\n=== {experiment_id} ===" + ("" if archive else " (not archived)"))
            print(text)

    return emit


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark.

    Simulation benchmarks are deterministic and expensive; statistical
    repetition adds nothing, so a single timed round is recorded.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
