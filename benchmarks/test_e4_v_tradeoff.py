"""E4 [reconstructed]: the Lyapunov [O(1/V), O(V)] trade-off.

Figure analogue: welfare and queue backlog as functions of V.  Expected
shape: total welfare increases in V, saturating toward the myopic
(budget-free) level — the O(1/V) optimality gap — while the peak virtual-
queue backlog (transient budget debt) grows roughly linearly in V — the
O(V) queue bound.  This is the knob a deployment turns to trade budget
smoothness against welfare.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.welfare import welfare_summary
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

SEED = 31
NUM_CLIENTS = 40
ROUNDS = 600
K = 10
BUDGET = 2.0
V_GRID = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0)


def run_all():
    rows = []
    for v in V_GRID:
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=v, budget_per_round=BUDGET, max_winners=K)
        )
        scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=37
        ).run(ROUNDS)
        summary = welfare_summary(log)
        queue = mechanism.controller.queue
        rows.append(
            {
                "v": v,
                "total_welfare": summary.total_welfare,
                "avg_spend": summary.average_payment,
                "peak_backlog": queue.peak_backlog,
                "final_backlog": queue.backlog,
            }
        )
    return rows


def test_e4_v_tradeoff(benchmark, report):
    from repro.core.theory import lyapunov_bounds

    rows = run_once(benchmark, run_all)

    # Overlay the computable theory bounds (docs/THEORY.md §3): the measured
    # welfare gap must shrink at least as fast as B0/V up to constants, and
    # the bound columns contextualise the measured backlogs.
    max_payment = max(r["avg_spend"] for r in rows) * 3  # crude per-round cap
    for r in rows:
        bounds = lyapunov_bounds(
            v=r["v"], budget_per_round=BUDGET,
            max_payment_per_round=max_payment, welfare_span=K * 3.0,
            slack=BUDGET / 2,
        )
        r["welfare_gap_bound"] = bounds.welfare_gap
        r["queue_bound"] = bounds.queue_bound

    text = format_table(
        ["V", "total_welfare", "avg_spend", "peak_backlog", "final_backlog",
         "theory_gap_bound", "theory_queue_bound"],
        [
            [r["v"], r["total_welfare"], r["avg_spend"], r["peak_backlog"],
             r["final_backlog"], r["welfare_gap_bound"], r["queue_bound"]]
            for r in rows
        ],
        title=f"V sweep (budget={BUDGET}/round, {ROUNDS} rounds) with theory overlay",
    )
    report("e4_v_tradeoff", text)

    welfare = [r["total_welfare"] for r in rows]
    backlog = [r["peak_backlog"] for r in rows]
    # Shape: welfare non-decreasing in V (up to small noise), backlog growing.
    assert welfare[-1] >= welfare[0]
    assert backlog[-1] > backlog[0]
    # O(V) backlog: the largest V has backlog within a constant of linear.
    assert backlog[-1] / V_GRID[-1] < 10 * max(backlog[0] / V_GRID[0], 1e-9) + 10.0
