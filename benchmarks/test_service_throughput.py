"""Service throughput: sustained bid ingest and round-close latency.

The auction service moves the mechanism behind a socket; this harness
measures what that seam costs.  For each concurrency level it starts a
real :class:`~repro.service.server.AuctionServer` (own event loop in a
thread), creates N markets closing rounds on the batch trigger, and
blasts each market with pipelined bulk-bid frames from its own writer
thread — the same wire path ``repro.cli replay`` exercises.  Per cell it
records:

* **sustained bids/sec** across all markets (accepted bids over wall
  time, protocol + JSON + event-loop dispatch included);
* **round-close latency** p50/p95/p99/max from the per-market decision
  histograms (mechanism solve + payments + queue feedback per close);
* rounds/sec actually closed.

Results land in ``results/BENCH_service.json`` (plus a text table) so
service-path regressions diff across PRs.  Knobs: ``SERVICE_MARKETS``
(comma list of concurrent market counts, default ``1,2,4``),
``SERVICE_ROUNDS`` (rounds per market, default 120), ``SERVICE_CLIENTS``
(bids per round, default 32), ``SERVICE_JSON_OUT`` (extra JSON copy for
CI artifacts).  Reduced sweeps are not archived over the committed
baseline.

Gates: no bid may be rejected, every round must close, and each cell
must sustain at least 200 bids/sec — an order of magnitude below the
observed rate, so only a real regression trips it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.service.client import ServiceClient
from repro.service.server import start_server_thread
from repro.telemetry import Histogram
from repro.utils.tables import format_table

DEFAULT_MARKETS = (1, 2, 4)
DEFAULT_ROUNDS = 120
DEFAULT_CLIENTS = 32

MARKETS = tuple(
    int(m) for m in os.environ.get("SERVICE_MARKETS", "").split(",") if m.strip()
) or DEFAULT_MARKETS
ROUNDS = int(os.environ.get("SERVICE_ROUNDS", DEFAULT_ROUNDS))
CLIENTS = int(os.environ.get("SERVICE_CLIENTS", DEFAULT_CLIENTS))

EXPERIMENT = {
    "num_clients": CLIENTS,
    "v": 10.0,
    "budget_per_round": 5.0,
    "max_winners": 8,
}
MIN_BIDS_PER_SEC = 200.0


def make_rounds(seed: int) -> list[list[dict]]:
    """ROUNDS rounds of CLIENTS bids each (deterministic per market)."""
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.1, 2.0, size=(ROUNDS, CLIENTS))
    values = rng.uniform(0.2, 3.0, size=(ROUNDS, CLIENTS))
    return [
        [
            {
                "client_id": i,
                "cost": float(costs[t, i]),
                "value": float(values[t, i]),
            }
            for i in range(CLIENTS)
        ]
        for t in range(ROUNDS)
    ]


def drive_market(port: int, name: str, seed: int, failures: list) -> None:
    """One writer: pipeline every round's bids into its market."""
    try:
        with ServiceClient("127.0.0.1", port) as client:
            for round_bids in make_rounds(seed):
                # chunk == round size: each bulk frame fills exactly one
                # round, so the batch trigger closes it server-side.
                summary = client.send_bids(name, round_bids, chunk=CLIENTS)
                if summary["rejected"]:
                    failures.append((name, summary))
                    return
    except Exception as error:  # noqa: BLE001 - surfaced by the main thread
        failures.append((name, repr(error)))


def run_cell(num_markets: int) -> dict:
    """One concurrency level: N markets, N writer threads, one server."""
    handle = start_server_thread()
    try:
        with ServiceClient("127.0.0.1", handle.port) as admin:
            for m in range(num_markets):
                admin.create_market(
                    f"bench-{m}",
                    experiment=EXPERIMENT,
                    max_round_bids=CLIENTS,
                )
        failures: list = []
        writers = [
            threading.Thread(
                target=drive_market,
                args=(handle.port, f"bench-{m}", m, failures),
                name=f"writer-{m}",
            )
            for m in range(num_markets)
        ]
        started = time.perf_counter()
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        elapsed = time.perf_counter() - started
        assert not failures, failures

        close_hist = Histogram()
        rounds_closed = 0
        bids_accepted = 0
        with ServiceClient("127.0.0.1", handle.port) as admin:
            for row in admin.markets():
                rounds_closed += row["rounds_closed"]
                bids_accepted += row["bids_accepted"]
                assert row["bids_rejected"] == 0, row
                assert row["rounds_closed"] == ROUNDS, row
        for market in handle.server.markets.values():
            close_hist.merge(market.latency)
        summary = close_hist.summary()
    finally:
        handle.stop()
    return {
        "markets": num_markets,
        "bids": bids_accepted,
        "rounds": rounds_closed,
        "seconds": elapsed,
        "bids_per_sec": bids_accepted / elapsed,
        "rounds_per_sec": rounds_closed / elapsed,
        "close_ms": {
            key: float(summary[key])
            for key in ("p50_ms", "p95_ms", "p99_ms", "max_ms", "jitter_ms")
        },
        "close_count": summary["count"],
    }


def run_all() -> list[dict]:
    return [run_cell(m) for m in MARKETS]


def test_service_throughput(benchmark, report):
    cells = run_once(benchmark, run_all)

    text = format_table(
        [
            "markets",
            "bids",
            "bids/sec",
            "rounds/sec",
            "close p50 (ms)",
            "close p95 (ms)",
            "close p99 (ms)",
            "close max (ms)",
        ],
        [
            [
                cell["markets"],
                cell["bids"],
                f"{cell['bids_per_sec']:.0f}",
                f"{cell['rounds_per_sec']:.1f}",
                f"{cell['close_ms']['p50_ms']:.3f}",
                f"{cell['close_ms']['p95_ms']:.3f}",
                f"{cell['close_ms']['p99_ms']:.3f}",
                f"{cell['close_ms']['max_ms']:.3f}",
            ]
            for cell in cells
        ],
        title=(
            f"Auction-service throughput ({ROUNDS} rounds/market, "
            f"{CLIENTS} bids/round, batch-trigger closes)"
        ),
    )
    payload = {
        "experiment": "service_throughput",
        "config": {
            "markets": list(MARKETS),
            "rounds": ROUNDS,
            "clients": CLIENTS,
            "experiment": EXPERIMENT,
        },
        "cells": [
            {
                **{k: cell[k] for k in ("markets", "bids", "rounds", "close_count")},
                "seconds": round(cell["seconds"], 4),
                "bids_per_sec": round(cell["bids_per_sec"], 1),
                "rounds_per_sec": round(cell["rounds_per_sec"], 2),
                "close_ms": {
                    key: round(value, 4)
                    for key, value in cell["close_ms"].items()
                },
            }
            for cell in cells
        ],
    }
    report(
        "service_throughput",
        text,
        json_payload=payload,
        json_id="service",
        archive=(
            MARKETS == DEFAULT_MARKETS
            and ROUNDS == DEFAULT_ROUNDS
            and CLIENTS == DEFAULT_CLIENTS
        ),
    )
    out_path = os.environ.get("SERVICE_JSON_OUT")
    if out_path:
        Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    for cell in cells:
        label = f"{cell['markets']} market(s)"
        assert cell["bids"] == cell["markets"] * ROUNDS * CLIENTS, label
        assert cell["close_count"] == cell["markets"] * ROUNDS, label
        assert cell["bids_per_sec"] > MIN_BIDS_PER_SEC, (label, cell)
