"""E11 [reconstructed]: statistical robustness of the headline claims.

Companion table to E2/E3: the two claims the paper's story rests on —
(1) LT-VCG accumulates more welfare than random selection, and
(2) LT-VCG's average spend is budget-compliant while myopic VCG's is not —
re-evaluated over multiple seeds with paired comparisons and confidence
intervals instead of single-seed anecdotes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.stats import paired_comparison, summarize
from repro.mechanisms import MyopicVCGMechanism, RandomSelectionMechanism
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

SEEDS = (0, 1, 2, 3, 4, 5)
NUM_CLIENTS = 30
ROUNDS = 300
K = 8
BUDGET = 2.0
V = 15.0


def run_mechanism(name: str, seed: int):
    if name == "lt-vcg":
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=BUDGET, max_winners=K)
        )
    elif name == "myopic":
        mechanism = MyopicVCGMechanism(max_winners=K)
    elif name == "random":
        mechanism = RandomSelectionMechanism(K, np.random.default_rng(seed + 100))
    else:
        raise ValueError(name)
    scenario = build_mechanism_scenario(NUM_CLIENTS, seed=seed)
    return SimulationRunner(
        mechanism, scenario.clients, scenario.valuation, seed=seed + 50
    ).run(ROUNDS)


def welfare_of(name: str):
    return lambda seed: run_mechanism(name, seed).total_welfare()


def spend_of(name: str):
    return lambda seed: run_mechanism(name, seed).average_payment()


def run_all():
    welfare_comparison = paired_comparison(
        welfare_of("lt-vcg"), welfare_of("random"), seeds=SEEDS
    )
    lt_spend = summarize([spend_of("lt-vcg")(s) for s in SEEDS])
    myopic_spend = summarize([spend_of("myopic")(s) for s in SEEDS])
    return welfare_comparison, lt_spend, myopic_spend


def test_e11_multiseed(benchmark, report):
    welfare_comparison, lt_spend, myopic_spend = run_once(benchmark, run_all)

    rows = [
        [
            "welfare: lt-vcg − random",
            welfare_comparison.mean_difference,
            welfare_comparison.ci_low,
            welfare_comparison.ci_high,
            welfare_comparison.p_value,
            f"{welfare_comparison.wins}/{len(SEEDS)}",
        ],
    ]
    text = format_table(
        ["claim", "mean diff", "ci low", "ci high", "p", "wins"],
        rows,
        title=f"Paired comparisons over {len(SEEDS)} seeds ({ROUNDS} rounds each)",
    )
    text += "\n\n" + format_table(
        ["mechanism", "avg spend (mean)", "ci low", "ci high", "budget"],
        [
            ["lt-vcg", lt_spend.mean, lt_spend.ci_low, lt_spend.ci_high, BUDGET],
            ["myopic-vcg", myopic_spend.mean, myopic_spend.ci_low,
             myopic_spend.ci_high, BUDGET],
        ],
        title="Average spend per round across seeds",
    )
    report("e11_multiseed", text)

    # Claim 1: welfare advantage significant across seeds.
    assert welfare_comparison.significant
    assert welfare_comparison.mean_difference > 0
    # Claim 2: LT-VCG compliant on average (within the finite-horizon
    # transient), myopic clearly above the budget.
    assert lt_spend.mean <= BUDGET * 1.15
    assert myopic_spend.ci_low > BUDGET
