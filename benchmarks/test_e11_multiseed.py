"""E11 [reconstructed]: statistical robustness of the headline claims.

Companion table to E2/E3: the two claims the paper's story rests on —
(1) LT-VCG accumulates more welfare than random selection, and
(2) LT-VCG's average spend is budget-compliant while myopic VCG's is not —
re-evaluated over multiple seeds with paired comparisons and confidence
intervals instead of single-seed anecdotes.

Runs through :mod:`repro.orchestration`: one declarative 3-mechanism ×
6-seed campaign, with every per-seed metric read back from the result
store — each cell is simulated exactly once and both claims are evaluated
from the same stored rows.
"""

from __future__ import annotations

import tempfile

from benchmarks.conftest import run_once
from repro.analysis.stats import paired_comparison, summarize
from repro.config import ExperimentConfig
from repro.orchestration import SweepSpec, load_results, run_campaign
from repro.utils.tables import format_table

SEEDS = (0, 1, 2, 3, 4, 5)
NUM_CLIENTS = 30
ROUNDS = 300
K = 8
BUDGET = 2.0
V = 15.0

MECHANISMS = ("lt-vcg", "myopic-vcg", "random")


def run_campaign_cells() -> dict[tuple[str, int], dict]:
    """Run the sweep; returns (mechanism, seed) -> stored metrics row."""
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=NUM_CLIENTS,
            num_rounds=ROUNDS,
            max_winners=K,
            budget_per_round=BUDGET,
            v=V,
        ),
        mechanisms=MECHANISMS,
        seeds=SEEDS,
        name="e11-multiseed",
    )
    with tempfile.TemporaryDirectory() as campaign_dir:
        summary = run_campaign(spec, campaign_dir, max_workers=0)
        assert summary.failed == 0, "e11 campaign had failed cells"
        results = load_results(campaign_dir)
    return {(r.mechanism, r.seed): r.metrics for r in results if r.completed}


def run_all():
    metrics = run_campaign_cells()
    welfare_comparison = paired_comparison(
        lambda seed: metrics[("lt-vcg", seed)]["total_welfare"],
        lambda seed: metrics[("random", seed)]["total_welfare"],
        seeds=SEEDS,
    )
    lt_spend = summarize(
        [metrics[("lt-vcg", seed)]["average_payment"] for seed in SEEDS]
    )
    myopic_spend = summarize(
        [metrics[("myopic-vcg", seed)]["average_payment"] for seed in SEEDS]
    )
    return welfare_comparison, lt_spend, myopic_spend


def test_e11_multiseed(benchmark, report):
    welfare_comparison, lt_spend, myopic_spend = run_once(benchmark, run_all)

    rows = [
        [
            "welfare: lt-vcg − random",
            welfare_comparison.mean_difference,
            welfare_comparison.ci_low,
            welfare_comparison.ci_high,
            welfare_comparison.p_value,
            f"{welfare_comparison.wins}/{len(SEEDS)}",
        ],
    ]
    text = format_table(
        ["claim", "mean diff", "ci low", "ci high", "p", "wins"],
        rows,
        title=f"Paired comparisons over {len(SEEDS)} seeds ({ROUNDS} rounds each)",
    )
    text += "\n\n" + format_table(
        ["mechanism", "avg spend (mean)", "ci low", "ci high", "budget"],
        [
            ["lt-vcg", lt_spend.mean, lt_spend.ci_low, lt_spend.ci_high, BUDGET],
            ["myopic-vcg", myopic_spend.mean, myopic_spend.ci_low,
             myopic_spend.ci_high, BUDGET],
        ],
        title="Average spend per round across seeds",
    )
    report("e11_multiseed", text)

    # Claim 1: welfare advantage significant across seeds.
    assert welfare_comparison.significant
    assert welfare_comparison.mean_difference > 0
    # Claim 2: LT-VCG compliant on average (within the finite-horizon
    # transient), myopic clearly above the budget.
    assert lt_spend.mean <= BUDGET * 1.15
    assert myopic_spend.ci_low > BUDGET
