"""E7 [reconstructed]: sustainability under energy-harvesting clients.

Figure/table analogue: participation fairness and battery survival when
clients run on harvested energy (Bernoulli / Markov / diurnal processes).
Expected shape: LT-VCG with participation queues spreads selection across
the population (higher Jain index, fewer starved clients) compared to the
same mechanism without queues and to the cost-greedy baseline, which
repeatedly drains the cheapest clients.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.fairness import (
    gini_coefficient,
    jain_index,
    participation_rates,
    starvation_count,
)
from repro.mechanisms import GreedyFirstPriceMechanism, RandomSelectionMechanism
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

SEED = 83
NUM_CLIENTS = 30
ROUNDS = 500
K = 8
BUDGET = 2.5
V = 20.0
TARGET_RATE = 0.15


def make_mechanisms():
    targets = {cid: TARGET_RATE for cid in range(NUM_CLIENTS)}
    return {
        "lt-vcg (+queues)": LongTermVCGMechanism(
            LongTermVCGConfig(
                v=V, budget_per_round=BUDGET, max_winners=K,
                participation_targets=targets, sustainability_weight=5.0,
            )
        ),
        "lt-vcg (no queues)": LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=BUDGET, max_winners=K)
        ),
        "greedy-first-price": GreedyFirstPriceMechanism(BUDGET, K),
        "random": RandomSelectionMechanism(K, np.random.default_rng(5)),
    }


def run_all():
    results = {}
    for name, mechanism in make_mechanisms().items():
        scenario = build_mechanism_scenario(
            NUM_CLIENTS, seed=SEED, energy_constrained=True
        )
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=17
        ).run(ROUNDS)
        results[name] = (log, scenario)
    return results


def test_e7_sustainability(benchmark, report):
    results = run_once(benchmark, run_all)

    rows = []
    for name, (log, scenario) in results.items():
        ids = list(range(NUM_CLIENTS))
        rates = list(participation_rates(log, ids).values())
        final_batteries = [
            log.records[-1].battery_levels[cid] for cid in ids
        ]
        capacities = [c.battery.capacity for c in scenario.clients]
        rows.append(
            [
                name,
                log.total_welfare(),
                jain_index(rates),
                gini_coefficient(rates),
                starvation_count(log, ids, minimum_rate=0.05),
                float(np.mean(np.array(final_batteries) / np.array(capacities))),
                float(np.mean([len(r.available) for r in log])),
            ]
        )
    text = format_table(
        [
            "mechanism", "total_welfare", "jain", "gini",
            "starved(<5%)", "mean_battery_frac", "avail/round",
        ],
        rows,
        title=f"Sustainability over {ROUNDS} rounds, {NUM_CLIENTS} harvesting clients",
    )
    report("e7_sustainability", text)

    metrics = {row[0]: row for row in rows}
    # Shape: participation queues raise fairness and cut starvation relative
    # to the no-queue ablation and the cost-greedy baseline.
    assert metrics["lt-vcg (+queues)"][2] > metrics["lt-vcg (no queues)"][2]
    assert metrics["lt-vcg (+queues)"][2] > metrics["greedy-first-price"][2]
    assert metrics["lt-vcg (+queues)"][4] <= metrics["greedy-first-price"][4]
