"""E9 [reconstructed]: mechanism runtime vs. population size.

Table analogue: per-round wall time of the full mechanism (winner
determination + truthful payments + queue updates) as the number of bidding
clients grows, on two instance families:

* **cardinality-only** (at most K winners): exact selection is a top-K sort
  and Clarke payments are the closed-form displaced-candidate pivot; the
  greedy variant pays analytic critical values — both microseconds.
* **knapsack-constrained** (per-round resource capacity): exact selection
  needs the DP solver and Clarke payments reuse its prefix/suffix tables;
  greedy + analytic criticals stays near the cardinality-only cost — this
  is the regime the greedy variant exists for.

Besides the text table, the run archives ``results/BENCH_e9.json`` with the
per-population, per-solver milliseconds (plus isolated payment-phase
timings for the greedy families) so the perf trajectory is tracked across
PRs.  The ``batch`` block tracks the batched round pipeline: batched vs.
sequential rounds/sec through ``Mechanism.run_rounds`` for representative
stateless mechanisms, and the E5-style deviation-probe wall time (one
batched ``probe_rounds`` grid vs. the legacy fresh-mechanism-per-deviation
loop) at the largest population.  The ``knapsack_dp`` block times the
exact-knapsack round cost (WD + Clarke criticals) three ways — unpruned
per-round DP (the legacy fallback), the pruned scalar path, and the
stacked ``solve_knapsack_dp_rows`` batch path — and labels every row with
the active compute backend (``REPRO_BACKEND``); the >= 3x acceptance gate
at n=200 applies on the numpy oracle backend.  Set ``E9_SIZES`` (comma-separated
populations) to shrink the sweep — CI runs a perf-smoke pass at
``E9_SIZES=10,20,50``.

Expected shape: everything stays well under a second per round at N=400,
greedy payments are no longer the dominant cost anywhere (the n+1
re-solve / bisection hot path was replaced by the incremental payment
engine), and the batched probe beats the sequential probe >= 5x at n=200.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, kernels
from repro.core import winner_determination as wd
from repro.core.bids import AuctionRound, Bid, RoundBatch
from repro.core.payments import greedy_critical_scores, knapsack_clarke_critical_scores
from repro.core.properties import verify_truthfulness
from repro.core.winner_determination import (
    WinnerDeterminationProblem,
    solve_greedy,
    solve_knapsack_dp,
    solve_knapsack_dp_rows,
)
from repro.mechanisms import GreedyFirstPriceMechanism, MyopicVCGMechanism
from repro.utils.tables import format_table

K = 10
BUDGET = 5.0
DEFAULT_SIZES = (10, 20, 50, 100, 200, 400)
SIZES = tuple(
    int(s) for s in os.environ.get("E9_SIZES", "").split(",") if s.strip()
) or DEFAULT_SIZES
REPEATS = 3
BATCH_ROUNDS = 64
PROBE_FACTORS = (0.5, 0.8, 0.9, 1.1, 1.25, 1.5, 2.0, 4.0)


def build_round(n: int, seed: int) -> AuctionRound:
    rng = np.random.default_rng(seed)
    bids = tuple(
        Bid(
            client_id=i,
            cost=float(rng.uniform(0.1, 2.0)),
            data_size=int(rng.integers(20, 2000)),
        )
        for i in range(n)
    )
    values = {i: float(rng.uniform(0.2, 3.0)) for i in range(n)}
    return AuctionRound(index=0, bids=bids, values=values)


def make_mechanism(wd_method: str, n: int, knapsack: bool) -> LongTermVCGMechanism:
    demands = capacity = None
    if knapsack:
        rng = np.random.default_rng(n)
        demands = {i: float(rng.uniform(0.5, 2.0)) for i in range(n)}
        capacity = 8.0  # roughly K/2 average-demand winners fit
    return LongTermVCGMechanism(
        LongTermVCGConfig(
            v=20.0,
            budget_per_round=BUDGET,
            max_winners=K,
            wd_method=wd_method,
            demands=demands,
            capacity=capacity,
        )
    )


def time_mechanism(wd_method: str, n: int, knapsack: bool) -> float:
    """Mean seconds per round over REPEATS fresh rounds."""
    mechanism = make_mechanism(wd_method, n, knapsack)
    total = 0.0
    for repeat in range(REPEATS):
        auction_round = build_round(n, seed=repeat)
        start = time.perf_counter()
        mechanism.run_round(auction_round)
        total += time.perf_counter() - start
    return total / REPEATS


def time_greedy_payments(n: int, knapsack: bool) -> float:
    """Mean seconds for the greedy payment phase alone (no WD, no queues)."""
    mechanism = make_mechanism("greedy", n, knapsack)
    total = 0.0
    for repeat in range(REPEATS):
        auction_round = build_round(n, seed=repeat)
        auction = mechanism.build_auction(auction_round)
        problem, _ = auction.build_problem(auction_round)
        allocation = solve_greedy(problem)
        start = time.perf_counter()
        greedy_critical_scores(problem, allocation)
        total += time.perf_counter() - start
    return total / REPEATS


def knapsack_problems(n: int) -> list[WinnerDeterminationProblem]:
    """E9-shape exact-knapsack instances with ``n`` DP candidates per round.

    All-positive scores keep every bidder a DP candidate, so ``n`` is the
    true DP width (the mechanism's own instances shed the negative-score
    half before the solver ever sees them).  Capacity/demand/K match the
    mechanism's knapsack configuration.
    """
    problems = []
    for t in range(BATCH_ROUNDS):
        rng = np.random.default_rng(1000 + t)
        problems.append(
            WinnerDeterminationProblem(
                scores=tuple(float(s) for s in rng.uniform(0.2, 3.0, n)),
                demands=tuple(float(d) for d in rng.uniform(0.5, 2.0, n)),
                capacity=8.0,
                max_winners=K,
            )
        )
    return problems


def _clear_dp_state() -> None:
    """Drop the memoised prune states so each timed variant computes its own."""
    if hasattr(wd._LOCAL, "prune_memo"):
        wd._LOCAL.prune_memo.clear()


def time_knapsack_paths(n: int) -> dict:
    """Pruned scalar / stacked knapsack DP vs. the unpruned per-round fallback.

    All three variants run winner determination *and* Clarke criticals over
    the same ``BATCH_ROUNDS`` instances, so the speedups reflect the full
    exact-knapsack round cost, not just the table fill.
    """
    problems = knapsack_problems(n)
    _clear_dp_state()
    start = time.perf_counter()
    for problem in problems:
        allocation = solve_knapsack_dp(problem, prune=False)
        knapsack_clarke_critical_scores(problem, allocation, prune=False)
    legacy = time.perf_counter() - start
    _clear_dp_state()
    start = time.perf_counter()
    for problem in problems:
        allocation = solve_knapsack_dp(problem)
        knapsack_clarke_critical_scores(problem, allocation)
    pruned = time.perf_counter() - start
    _clear_dp_state()
    start = time.perf_counter()
    allocations = solve_knapsack_dp_rows(problems)
    for problem, allocation in zip(problems, allocations):
        knapsack_clarke_critical_scores(problem, allocation)
    batched = time.perf_counter() - start
    return {
        "n": n,
        "backend": kernels.active_backend().name,
        "legacy_ms_per_round": legacy / BATCH_ROUNDS * 1e3,
        "pruned_ms_per_round": pruned / BATCH_ROUNDS * 1e3,
        "batched_ms_per_round": batched / BATCH_ROUNDS * 1e3,
        "pruned_speedup": legacy / pruned,
        "batched_speedup": legacy / batched,
    }


def batch_mechanisms(n: int) -> dict[str, object]:
    return {
        "myopic-vcg": MyopicVCGMechanism(max_winners=K),
        "greedy-first-price": GreedyFirstPriceMechanism(BUDGET, K),
    }


def time_batched_rounds(n: int) -> list[dict]:
    """Batched vs. sequential rounds/sec through run_rounds, per mechanism."""
    rounds = [
        AuctionRound(index=t, bids=r.bids, values=r.values)
        for t, r in ((t, build_round(n, seed=t)) for t in range(BATCH_ROUNDS))
    ]
    batch = RoundBatch.from_rounds(rounds)
    rows = []
    for name in sorted(batch_mechanisms(n)):
        sequential_mechanism = batch_mechanisms(n)[name]
        start = time.perf_counter()
        for auction_round in rounds:
            sequential_mechanism.run_round(auction_round)
        sequential = time.perf_counter() - start
        batched_mechanism = batch_mechanisms(n)[name]
        start = time.perf_counter()
        batched_mechanism.run_rounds(batch)
        batched = time.perf_counter() - start
        rows.append(
            {
                "mechanism": name,
                "n": n,
                "sequential_rounds_per_sec": BATCH_ROUNDS / sequential,
                "batched_rounds_per_sec": BATCH_ROUNDS / batched,
                "speedup": sequential / batched,
            }
        )
    return rows


def time_deviation_probe(n: int) -> dict:
    """E5-style truthfulness sweep: batched probe vs. the legacy loop."""
    auction_round = build_round(n, seed=0)
    true_costs = {bid.client_id: bid.cost for bid in auction_round.bids}

    def factory():
        return LongTermVCGMechanism(
            LongTermVCGConfig(v=20.0, budget_per_round=BUDGET, max_winners=K)
        )

    start = time.perf_counter()
    report = verify_truthfulness(
        factory, auction_round, true_costs, deviation_factors=PROBE_FACTORS
    )
    batched = time.perf_counter() - start
    assert report.is_truthful

    # The pre-batching probe loop: a fresh mechanism per deviation driven
    # through with_replaced_bid + run_round.
    start = time.perf_counter()
    factory().run_round(auction_round)
    for bid in auction_round.bids:
        for factor in PROBE_FACTORS:
            deviated = auction_round.with_replaced_bid(
                bid.with_cost(true_costs[bid.client_id] * factor)
            )
            factory().run_round(deviated)
    sequential = time.perf_counter() - start
    return {
        "n": n,
        "deviations": len(auction_round.bids) * len(PROBE_FACTORS),
        "batched_ms": batched * 1e3,
        "sequential_ms": sequential * 1e3,
        "speedup": sequential / batched,
    }


def run_all():
    rows = []
    for n in SIZES:
        rows.append(
            {
                "n": n,
                "card_exact_ms": time_mechanism("exact", n, knapsack=False) * 1e3,
                "card_greedy_ms": time_mechanism("greedy", n, knapsack=False) * 1e3,
                "knap_exact_ms": time_mechanism("exact", n, knapsack=True) * 1e3,
                "knap_greedy_ms": time_mechanism("greedy", n, knapsack=True) * 1e3,
                "card_greedy_pay_ms": time_greedy_payments(n, knapsack=False) * 1e3,
                "knap_greedy_pay_ms": time_greedy_payments(n, knapsack=True) * 1e3,
            }
        )
    batch_rows = [row for n in SIZES for row in time_batched_rounds(n)]
    knap_rows = [time_knapsack_paths(n) for n in SIZES if n >= 50]
    # The acceptance gate is pinned at n=200; fall back to the largest swept
    # population on reduced (smoke) sweeps.
    probe = time_deviation_probe(200 if 200 in SIZES else max(SIZES))
    return rows, batch_rows, knap_rows, probe


def test_e9_scalability(benchmark, report):
    rows, batch_rows, knap_rows, probe = run_once(benchmark, run_all)

    text = format_table(
        [
            "clients",
            "card exact (ms)",
            "card greedy (ms)",
            "knapsack exact (ms)",
            "knapsack greedy (ms)",
        ],
        [
            [r["n"], r["card_exact_ms"], r["card_greedy_ms"],
             r["knap_exact_ms"], r["knap_greedy_ms"]]
            for r in rows
        ],
        title="Per-round mechanism latency vs. population size",
    )
    text += "\n\n" + format_table(
        ["mechanism", "clients", "seq rounds/s", "batched rounds/s", "speedup"],
        [
            [r["mechanism"], r["n"], r["sequential_rounds_per_sec"],
             r["batched_rounds_per_sec"], r["speedup"]]
            for r in batch_rows
        ],
        title=f"Batched vs. sequential run_rounds ({BATCH_ROUNDS} rounds/batch)",
    )
    if knap_rows:
        text += "\n\n" + format_table(
            ["clients", "backend", "legacy (ms)", "pruned (ms)", "stacked (ms)",
             "pruned x", "stacked x"],
            [
                [r["n"], r["backend"], r["legacy_ms_per_round"],
                 r["pruned_ms_per_round"], r["batched_ms_per_round"],
                 r["pruned_speedup"], r["batched_speedup"]]
                for r in knap_rows
            ],
            title=(
                "Exact-knapsack round cost (WD + Clarke criticals): "
                "pruned / stacked DP vs. unpruned per-round fallback"
            ),
        )
    text += "\n\n" + format_table(
        ["clients", "deviations", "sequential (ms)", "batched (ms)", "speedup"],
        [[probe["n"], probe["deviations"], probe["sequential_ms"],
          probe["batched_ms"], probe["speedup"]]],
        title="E5-style deviation probe: batched grid vs. legacy loop",
    )
    payload = {
        "experiment": "e9_scalability",
        "unit": "ms_per_round",
        "config": {
            "k": K,
            "budget": BUDGET,
            "repeats": REPEATS,
            "sizes": list(SIZES),
            "backend": kernels.active_backend().name,
        },
        "rows": [{key: (value if key == "n" else round(value, 4)) for key, value in r.items()} for r in rows],
        "knapsack_dp": [
            {
                key: (value if key in ("n", "backend") else round(value, 4))
                for key, value in r.items()
            }
            for r in knap_rows
        ],
        "batch": {
            "rounds_per_batch": BATCH_ROUNDS,
            "run_rounds": [
                {
                    key: (value if key in ("mechanism", "n") else round(value, 2))
                    for key, value in r.items()
                }
                for r in batch_rows
            ],
            "deviation_probe": {
                key: (value if key in ("n", "deviations") else round(value, 3))
                for key, value in probe.items()
            },
        },
    }
    # Reduced E9_SIZES sweeps (CI smoke) must not overwrite the committed
    # full-sweep baselines.
    report(
        "e9_scalability",
        text,
        json_payload=payload,
        json_id="e9",
        archive=SIZES == DEFAULT_SIZES,
    )

    largest = rows[-1]
    # Shape: sub-second per round in every configuration, at any sweep size.
    for key in ("card_exact_ms", "card_greedy_ms", "knap_exact_ms", "knap_greedy_ms"):
        assert largest[key] < 1000.0, f"{key} too slow: {largest[key]:.1f} ms"
    # The payment phase no longer dominates: analytic greedy criticals stay
    # well under the old bisection engine (103 ms at n=400) at every size.
    assert largest["card_greedy_pay_ms"] < 20.0
    assert largest["knap_greedy_pay_ms"] < 20.0
    # Knapsack: greedy selection + analytic payments beat the DP-based exact
    # path once the DP is the dominant cost.
    assert largest["knap_greedy_ms"] < largest["knap_exact_ms"] * 1.25
    if largest["n"] >= 400:
        # Acceptance gate for the incremental payment engine: >= 5x per-round
        # reduction for the greedy families vs. the pre-engine baseline
        # (card 103.4 ms, knap 115.2 ms per round at n=400).
        assert largest["card_greedy_ms"] < 103.4 / 5
        assert largest["knap_greedy_ms"] < 115.2 / 5
    # Acceptance gate for the batched/pruned knapsack DP: at n=200 on the
    # numpy oracle backend, both the pruned scalar fallback and the stacked
    # batch path beat the unpruned per-round DP >= 3x (WD + payments
    # included).  Other backends report their columns without gating here —
    # they are pinned for *equivalence* in the backend suite instead.
    for row in knap_rows:
        if row["n"] == 200 and row["backend"] == "numpy":
            assert row["pruned_speedup"] >= 3.0, row
            assert row["batched_speedup"] >= 3.0, row
    # Batched run_rounds must never lose to the sequential loop by more than
    # noise once populations are large enough for timings to be stable
    # (single-sample timings at n<=50 are too noisy to gate CI on).
    for row in batch_rows:
        if row["n"] >= 200:
            assert row["speedup"] > 0.5, row
    if probe["n"] >= 200:
        # Acceptance gate for the batched round pipeline: the deviation
        # probe grid beats the legacy fresh-mechanism-per-deviation loop
        # >= 5x at n >= 200.
        assert probe["speedup"] >= 5.0, probe