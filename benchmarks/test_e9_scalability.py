"""E9 [reconstructed]: mechanism runtime vs. population size.

Table analogue: per-round wall time of the full mechanism (winner
determination + truthful payments + queue updates) as the number of bidding
clients grows, on two instance families:

* **cardinality-only** (at most K winners): exact selection is a top-K sort
  and Clarke payments are closed-form re-solves — microseconds; the greedy
  variant pays for bisection critical-value payments and is strictly worse
  here.
* **knapsack-constrained** (per-round resource capacity): exact selection
  needs the DP solver and Clarke payments re-run it per winner, which grows
  quickly; greedy + bisection overtakes it as N grows — this is the regime
  the greedy variant exists for.

Expected shape: everything stays well under a second per round at N=400,
and the exact/greedy crossover appears only on the knapsack family.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.bids import AuctionRound, Bid
from repro.utils.tables import format_table

K = 10
BUDGET = 5.0
SIZES = (10, 20, 50, 100, 200, 400)
REPEATS = 3


def build_round(n: int, seed: int) -> AuctionRound:
    rng = np.random.default_rng(seed)
    bids = tuple(
        Bid(
            client_id=i,
            cost=float(rng.uniform(0.1, 2.0)),
            data_size=int(rng.integers(20, 2000)),
        )
        for i in range(n)
    )
    values = {i: float(rng.uniform(0.2, 3.0)) for i in range(n)}
    return AuctionRound(index=0, bids=bids, values=values)


def make_mechanism(wd_method: str, n: int, knapsack: bool) -> LongTermVCGMechanism:
    demands = capacity = None
    if knapsack:
        rng = np.random.default_rng(n)
        demands = {i: float(rng.uniform(0.5, 2.0)) for i in range(n)}
        capacity = 8.0  # roughly K/2 average-demand winners fit
    return LongTermVCGMechanism(
        LongTermVCGConfig(
            v=20.0,
            budget_per_round=BUDGET,
            max_winners=K,
            wd_method=wd_method,
            demands=demands,
            capacity=capacity,
        )
    )


def time_mechanism(wd_method: str, n: int, knapsack: bool) -> float:
    """Mean seconds per round over REPEATS fresh rounds."""
    mechanism = make_mechanism(wd_method, n, knapsack)
    total = 0.0
    for repeat in range(REPEATS):
        auction_round = build_round(n, seed=repeat)
        start = time.perf_counter()
        mechanism.run_round(auction_round)
        total += time.perf_counter() - start
    return total / REPEATS


def run_all():
    rows = []
    for n in SIZES:
        rows.append(
            {
                "n": n,
                "card_exact_ms": time_mechanism("exact", n, knapsack=False) * 1e3,
                "card_greedy_ms": time_mechanism("greedy", n, knapsack=False) * 1e3,
                "knap_exact_ms": time_mechanism("exact", n, knapsack=True) * 1e3,
                "knap_greedy_ms": time_mechanism("greedy", n, knapsack=True) * 1e3,
            }
        )
    return rows


def test_e9_scalability(benchmark, report):
    rows = run_once(benchmark, run_all)

    text = format_table(
        [
            "clients",
            "card exact (ms)",
            "card greedy (ms)",
            "knapsack exact (ms)",
            "knapsack greedy (ms)",
        ],
        [
            [r["n"], r["card_exact_ms"], r["card_greedy_ms"],
             r["knap_exact_ms"], r["knap_greedy_ms"]]
            for r in rows
        ],
        title="Per-round mechanism latency vs. population size",
    )
    report("e9_scalability", text)

    largest = rows[-1]
    # Shape: sub-second per round at N=400 in every configuration.
    for key in ("card_exact_ms", "card_greedy_ms", "knap_exact_ms", "knap_greedy_ms"):
        assert largest[key] < 1000.0, f"{key} too slow: {largest[key]:.1f} ms"
    # Cardinality-only: exact (top-K + Clarke) is the cheap variant.
    assert largest["card_exact_ms"] < largest["card_greedy_ms"]
    # Knapsack: greedy is at least competitive with the DP-based exact at
    # scale (25 % slack absorbs timer noise in a single-shot measurement).
    assert largest["knap_greedy_ms"] < largest["knap_exact_ms"] * 1.25
