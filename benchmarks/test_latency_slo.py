"""Latency SLO harness: per-round auction decisions under a deadline.

An online auction is only deployable if every round's decision (winner
determination + truthful payments + queue updates) lands inside the
round's control deadline; the paper's per-round setting makes tail latency
— not mean throughput — the deployment constraint.  This harness drives
each mechanism through a stream of fresh auction rounds and measures the
**decision latency distribution** per (mechanism, population) cell:

* **SLO pass** (telemetry off): every ``run_round`` call is wall-clocked
  into a :class:`repro.telemetry.Histogram` — exact p50/p95/p99/max,
  jitter (stddev), and the *deadline-miss rate* against a configurable
  per-round decision deadline (``SLO_DEADLINE_MS``, default 50 ms).
* **Profile pass** (telemetry spans): the same stream re-runs with span
  timers on, yielding the per-span breakdown (``round_decide`` →
  ``auction`` → ``wd_solve`` / ``pay_*`` / ``queue_update``) that says
  *where* the tail lives.

Both views land in ``results/BENCH_latency.json`` so latency regressions
diff across PRs, plus a text table and the span tree of the heaviest
cell.  Knobs: ``SLO_SIZES`` (comma-separated populations, default
``50,200``), ``SLO_ROUNDS`` (rounds per cell, default 400) and
``SLO_DEADLINE_MS`` — CI runs a reduced smoke pass; reduced sweeps are
not archived over the committed full-sweep baseline.

Regression gates: per cell, p95 must sit inside the deadline and the
miss rate must stay under 5 %; the profile pass must account for every
round (decision-span count == rounds driven).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, telemetry
from repro.core.bids import AuctionRound, Bid
from repro.mechanisms import GreedyFirstPriceMechanism, MyopicVCGMechanism
from repro.telemetry import Histogram
from repro.utils.tables import format_table

K = 10
BUDGET = 5.0
DEFAULT_SIZES = (50, 200)
DEFAULT_ROUNDS = 400
DEFAULT_DEADLINE_MS = 50.0
SIZES = tuple(
    int(s) for s in os.environ.get("SLO_SIZES", "").split(",") if s.strip()
) or DEFAULT_SIZES
ROUNDS = int(os.environ.get("SLO_ROUNDS", DEFAULT_ROUNDS))
DEADLINE_MS = float(os.environ.get("SLO_DEADLINE_MS", DEFAULT_DEADLINE_MS))
#: Uncounted rounds run first so allocator/numpy warmup does not pollute p99.
WARMUP_ROUNDS = 5


def build_rounds(n: int, count: int) -> list[AuctionRound]:
    """``count`` independent auction rounds over ``n`` clients."""
    rng = np.random.default_rng(n)
    rounds = []
    for t in range(count):
        bids = tuple(
            Bid(
                client_id=i,
                cost=float(rng.uniform(0.1, 2.0)),
                data_size=int(rng.integers(20, 2000)),
            )
            for i in range(n)
        )
        values = {i: float(rng.uniform(0.2, 3.0)) for i in range(n)}
        rounds.append(AuctionRound(index=t, bids=bids, values=values))
    return rounds


def make_mechanisms(n: int) -> dict[str, object]:
    """The mechanism zoo under SLO measurement (fresh state per call)."""

    def ltvcg(wd_method: str) -> LongTermVCGMechanism:
        return LongTermVCGMechanism(
            LongTermVCGConfig(
                v=20.0,
                budget_per_round=BUDGET,
                max_winners=K,
                wd_method=wd_method,
            )
        )

    return {
        "lt-vcg": ltvcg("exact"),
        "lt-vcg-greedy": ltvcg("greedy"),
        "myopic-vcg": MyopicVCGMechanism(max_winners=K),
        "greedy-first-price": GreedyFirstPriceMechanism(BUDGET, K),
    }


def measure_slo(mechanism, rounds: list[AuctionRound]) -> dict:
    """Telemetry-off pass: the pure decision-latency distribution."""
    for auction_round in rounds[:WARMUP_ROUNDS]:
        mechanism.run_round(auction_round)
    histogram = Histogram()
    deadline = DEADLINE_MS / 1e3
    misses = 0
    for auction_round in rounds:
        start = time.perf_counter()
        mechanism.run_round(auction_round)
        elapsed = time.perf_counter() - start
        histogram.record(elapsed)
        misses += elapsed > deadline
    row = histogram.summary()
    row["deadline_ms"] = DEADLINE_MS
    row["deadline_misses"] = misses
    row["deadline_miss_rate"] = misses / len(rounds)
    return row


def measure_spans(mechanism, rounds: list[AuctionRound]) -> dict:
    """Spans-on pass: where inside the decision the time goes.

    Wraps each call in the same ``round_decide`` span the simulation
    runner uses, so the breakdown here matches campaign profiles.
    """
    previous = telemetry.telemetry_level()
    telemetry.set_telemetry_level("spans")
    try:
        telemetry.reset()
        for auction_round in rounds:
            with telemetry.span("round_decide"):
                mechanism.run_round(auction_round)
        return telemetry.snapshot()
    finally:
        telemetry.set_telemetry_level(previous)


def compact_spans(snap: dict) -> dict:
    """Per-span stats without the bucket maps (keeps the JSON diffable)."""
    spans = {}
    for path, entry in sorted(snap.get("spans", {}).items()):
        spans[path] = {
            key: (value if key == "count" else round(float(value), 4))
            for key, value in entry.items()
            if key != "hist"
        }
    return spans


def run_all():
    cells = []
    heaviest_snapshot = None
    for n in SIZES:
        rounds = build_rounds(n, ROUNDS)
        for name, mechanism in sorted(make_mechanisms(n).items()):
            slo = measure_slo(mechanism, rounds)
            snap = measure_spans(make_mechanisms(n)[name], rounds)
            cells.append(
                {"mechanism": name, "n": n, "slo": slo, "spans": compact_spans(snap)}
            )
            if name == "lt-vcg" and n == max(SIZES):
                heaviest_snapshot = snap
    return cells, heaviest_snapshot


def test_latency_slo(benchmark, report):
    cells, heaviest_snapshot = run_once(benchmark, run_all)

    text = format_table(
        [
            "mechanism",
            "clients",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "max (ms)",
            "jitter (ms)",
            f"miss rate (@{DEADLINE_MS:g} ms)",
        ],
        [
            [
                cell["mechanism"],
                cell["n"],
                cell["slo"]["p50_ms"],
                cell["slo"]["p95_ms"],
                cell["slo"]["p99_ms"],
                cell["slo"]["max_ms"],
                cell["slo"]["jitter_ms"],
                cell["slo"]["deadline_miss_rate"],
            ]
            for cell in cells
        ],
        title=(
            f"Per-round decision latency vs. {DEADLINE_MS:g} ms SLO "
            f"({ROUNDS} rounds/cell)"
        ),
    )
    if heaviest_snapshot is not None:
        text += "\n\n" + telemetry.render_snapshot(
            heaviest_snapshot,
            title=f"Span breakdown (lt-vcg, n={max(SIZES)})",
            include_counters=False,
        )
    payload = {
        "experiment": "latency_slo",
        "unit": "ms",
        "config": {
            "k": K,
            "budget": BUDGET,
            "sizes": list(SIZES),
            "rounds": ROUNDS,
            "warmup_rounds": WARMUP_ROUNDS,
            "deadline_ms": DEADLINE_MS,
        },
        "cells": [
            {
                "mechanism": cell["mechanism"],
                "n": cell["n"],
                "slo": {
                    key: (
                        value
                        if key in ("count", "deadline_misses")
                        else round(float(value), 4)
                    )
                    for key, value in cell["slo"].items()
                },
                "spans": cell["spans"],
            }
            for cell in cells
        ],
    }
    # Reduced sweeps (CI smoke / local knobs) must not overwrite the
    # committed full-sweep baseline.
    report(
        "latency_slo",
        text,
        json_payload=payload,
        json_id="latency",
        archive=(
            SIZES == DEFAULT_SIZES
            and ROUNDS == DEFAULT_ROUNDS
            and DEADLINE_MS == DEFAULT_DEADLINE_MS
        ),
    )
    # CI smoke runs set SLO_JSON_OUT to keep their (reduced-sweep) numbers
    # as a build artifact without touching results/.
    out_path = os.environ.get("SLO_JSON_OUT")
    if out_path:
        Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")

    for cell in cells:
        label = f"{cell['mechanism']} @ n={cell['n']}"
        # SLO gates: the tail must sit inside the deadline, and sporadic
        # scheduler/GC spikes may not push the miss rate past 5 %.
        assert cell["slo"]["p95_ms"] < DEADLINE_MS, (label, cell["slo"])
        assert cell["slo"]["deadline_miss_rate"] <= 0.05, (label, cell["slo"])
        # Profile pass accounted for every round driven.
        decision = cell["spans"].get("round_decide")
        assert decision is not None and decision["count"] == ROUNDS, label
