"""E3 [reconstructed]: long-term budget compliance and queue trajectories.

Figure analogue: (a) running-average spend / budget over time for LT-VCG vs.
the no-Lyapunov ablation at three budget tightness levels, (b) the virtual
queue Q(t) trajectory.  Expected shape: LT-VCG's running average converges
to the budget line from above (transient O(V) overshoot, then compliance);
myopic VCG's average stays flat at its unconstrained level regardless of
the budget.

Runs through :mod:`repro.orchestration` (like E2/E11): one declarative
campaign over the mechanism x budget grid whose repetitions shard through
the orchestration worker — stateless baselines would batch; here both
mechanisms are stateful, so cells exercise the sequential worker path while
the spend curves and the Q(t) trajectories are read back from the archived
event logs (``budget_backlog`` is recorded in every round's diagnostics).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.budget import budget_report
from repro.config import ExperimentConfig
from repro.orchestration import SweepSpec, load_results, run_campaign
from repro.simulation.replay import load_event_log
from repro.utils.tables import format_series, format_table

SEED = 19
NUM_CLIENTS = 40
ROUNDS = 600
K = 10
V = 20.0
BUDGETS = {"tight": 1.5, "medium": 2.5, "loose": 5.0}
MECHANISMS = ("lt-vcg", "myopic-vcg")


def run_all():
    """Run the campaigns; returns (mechanism, budget label) -> EventLog.

    Two specs instead of one full mechanism x budget cross: LT-VCG sweeps
    the budget axis, while the budget-oblivious myopic ablation runs once
    (at the tight budget) — a full cross would recompute the identical
    myopic trajectory three times.
    """
    base = ExperimentConfig(
        num_clients=NUM_CLIENTS,
        num_rounds=ROUNDS,
        max_winners=K,
        v=V,
        seed=SEED,
    )
    specs = (
        SweepSpec(
            base=base,
            mechanisms=("lt-vcg",),
            seeds=(SEED,),
            params={"budget_per_round": tuple(BUDGETS.values())},
            name="e3-budget-compliance",
        ),
        SweepSpec(
            base=base,
            mechanisms=("myopic-vcg",),
            seeds=(SEED,),
            params={"budget_per_round": (BUDGETS["tight"],)},
            name="e3-budget-compliance-ablation",
        ),
    )
    logs = {}
    for spec in specs:
        with tempfile.TemporaryDirectory() as campaign_dir:
            summary = run_campaign(spec, campaign_dir, max_workers=0)
            assert summary.failed == 0, "e3 campaign had failed cells"
            for result in load_results(campaign_dir):
                assert result.completed and result.event_log_path is not None
                budget = float(result.params["budget_per_round"])
                label = next(k for k, v in BUDGETS.items() if v == budget)
                logs[(result.mechanism, label)] = load_event_log(
                    Path(result.event_log_path)
                )
    return logs


def running_average(payments):
    return (np.cumsum(payments) / np.arange(1, len(payments) + 1)).tolist()


def test_e3_budget_compliance(benchmark, report):
    logs = run_once(benchmark, run_all)

    xs = list(range(ROUNDS))
    spend_curves = {
        f"lt-vcg {label} (B={budget})": running_average(
            logs[("lt-vcg", label)].payment_series()
        )
        for label, budget in BUDGETS.items()
    }
    spend_curves[f"myopic (B={BUDGETS['tight']})"] = running_average(
        logs[("myopic-vcg", "tight")].payment_series()
    )
    text = format_series(
        xs, spend_curves, x_label="round",
        title="Running-average spend per round", max_points=14,
    )

    queue_curves = {
        f"Q(t) {label}": logs[("lt-vcg", label)].diagnostics_series(
            "budget_backlog"
        )
        for label in BUDGETS
    }
    text += "\n\n" + format_series(
        xs, queue_curves, x_label="round",
        title="Budget virtual-queue backlog Q(t)", max_points=14,
    )

    rows = []
    for (mechanism, label), log in sorted(logs.items()):
        budget = BUDGETS[label]
        rep = budget_report(log, budget)
        rows.append(
            [f"{mechanism}@{label}", budget, rep.average_spend,
             rep.final_overspend_ratio, rep.peak_cumulative_overspend,
             rep.compliant]
        )
    text += "\n\n" + format_table(
        ["run", "budget", "avg_spend", "spend/budget", "peak_overspend", "compliant"],
        rows, title="Budget compliance summary",
    )
    report("e3_budget_compliance", text)

    # Shape assertions: LT-VCG compliant at every budget; myopic violates the
    # tight budget.
    for label, budget in BUDGETS.items():
        log = logs[("lt-vcg", label)]
        assert budget_report(log, budget).final_overspend_ratio <= 1.1
    myopic = logs[("myopic-vcg", "tight")]
    assert budget_report(myopic, BUDGETS["tight"]).final_overspend_ratio > 1.3
