"""E3 [reconstructed]: long-term budget compliance and queue trajectories.

Figure analogue: (a) running-average spend / budget over time for LT-VCG vs.
the no-Lyapunov ablation at three budget tightness levels, (b) the virtual
queue Q(t) trajectory.  Expected shape: LT-VCG's running average converges
to the budget line from above (transient O(V) overshoot, then compliance);
myopic VCG's average stays flat at its unconstrained level regardless of
the budget.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.budget import budget_report
from repro.mechanisms import MyopicVCGMechanism
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_series, format_table

SEED = 19
NUM_CLIENTS = 40
ROUNDS = 600
K = 10
V = 20.0
BUDGETS = {"tight": 1.5, "medium": 2.5, "loose": 5.0}


def run_all():
    results = {}
    for label, budget in BUDGETS.items():
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=budget, max_winners=K)
        )
        scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=23
        ).run(ROUNDS)
        results[label] = (budget, log, mechanism.controller.queue.history)
    # The ablation at the tight budget.
    scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
    myopic_log = SimulationRunner(
        MyopicVCGMechanism(max_winners=K), scenario.clients, scenario.valuation, seed=23
    ).run(ROUNDS)
    results["myopic@tight"] = (BUDGETS["tight"], myopic_log, None)
    return results


def running_average(payments):
    return (np.cumsum(payments) / np.arange(1, len(payments) + 1)).tolist()


def test_e3_budget_compliance(benchmark, report):
    results = run_once(benchmark, run_all)

    xs = list(range(ROUNDS))
    spend_curves = {
        f"{label} (B={budget})": running_average(log.payment_series())
        for label, (budget, log, _) in results.items()
    }
    text = format_series(
        xs, spend_curves, x_label="round",
        title="Running-average spend per round", max_points=14,
    )

    queue_curves = {
        f"Q(t) {label}": history[:ROUNDS]
        for label, (_, _, history) in results.items()
        if history is not None
    }
    text += "\n\n" + format_series(
        xs, queue_curves, x_label="round",
        title="Budget virtual-queue backlog Q(t)", max_points=14,
    )

    rows = []
    for label, (budget, log, _) in results.items():
        rep = budget_report(log, budget)
        rows.append(
            [label, budget, rep.average_spend, rep.final_overspend_ratio,
             rep.peak_cumulative_overspend, rep.compliant]
        )
    text += "\n\n" + format_table(
        ["run", "budget", "avg_spend", "spend/budget", "peak_overspend", "compliant"],
        rows, title="Budget compliance summary",
    )
    report("e3_budget_compliance", text)

    # Shape assertions: LT-VCG compliant at every budget; myopic violates the
    # tight budget.
    for label in BUDGETS:
        budget, log, _ = results[label]
        assert budget_report(log, budget).final_overspend_ratio <= 1.1
    budget, log, _ = results["myopic@tight"]
    assert budget_report(log, budget).final_overspend_ratio > 1.3
