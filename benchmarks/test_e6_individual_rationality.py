"""E6 [reconstructed]: individual rationality and payment statistics.

Table analogue: per-mechanism payment accounting over a long run — total
paid, total true cost of winners, the truthful premium (informational rent),
per-winner payment, and the IR violation count.  Expected shape: zero IR
violations for every payment-floor mechanism; VCG-family mechanisms pay a
strictly positive premium (the price of truthfulness); pay-as-bid pays zero
premium under truthful bidding (and is exactly why it collapses under
strategic bidding, E5).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.reporting import payment_table
from repro.core.properties import verify_individual_rationality
from repro.core.bids import AuctionRound, Bid
from repro.mechanisms import (
    FixedPriceMechanism,
    GreedyFirstPriceMechanism,
    ProportionalShareMechanism,
    RandomSelectionMechanism,
)
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

SEED = 71
NUM_CLIENTS = 30
ROUNDS = 300
K = 8
BUDGET = 2.5


def make_mechanisms():
    return {
        "lt-vcg": LongTermVCGMechanism(
            LongTermVCGConfig(v=25.0, budget_per_round=BUDGET, max_winners=K)
        ),
        "prop-share": ProportionalShareMechanism(BUDGET, K),
        "greedy-first-price": GreedyFirstPriceMechanism(BUDGET, K),
        "fixed-price": FixedPriceMechanism(price=0.9, max_winners=K),
        "random": RandomSelectionMechanism(K, np.random.default_rng(2)),
    }


def run_all():
    logs = {}
    violations = {}
    for name, mechanism in make_mechanisms().items():
        scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
        runner = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=3
        )
        # The canonical scenario is history-free, so the batched loop is
        # exactly equivalent — this run doubles as batched-path coverage.
        log = runner.run(ROUNDS, batch_rounds=64)
        logs[name] = log
        count = 0
        for record in log:
            if not record.selected:
                continue
            bids = tuple(
                Bid(client_id=cid, cost=record.bids[cid]) for cid in record.available
            )
            auction_round = AuctionRound(
                index=record.round_index, bids=bids,
                values={cid: record.values[cid] for cid in record.available},
            )
            from repro.core.bids import RoundOutcome

            outcome = RoundOutcome(
                round_index=record.round_index,
                selected=record.selected,
                payments=record.payments,
            )
            count += len(verify_individual_rationality(outcome, auction_round))
        violations[name] = count
    return logs, violations


def test_e6_individual_rationality(benchmark, report):
    logs, violations = run_once(benchmark, run_all)

    text = payment_table(logs, title=f"Payment accounting over {ROUNDS} rounds")
    text += "\n\n" + format_table(
        ["mechanism", "ir_violations"],
        [[name, count] for name, count in violations.items()],
        title="Individual-rationality violations (winner paid below bid)",
    )
    report("e6_individual_rationality", text)

    for name, count in violations.items():
        assert count == 0, f"{name} violated IR {count} times"

    def premium(log):
        paid = log.total_payment()
        cost = sum(r.true_costs[c] for r in log for c in r.selected)
        return paid / cost - 1.0 if cost else 0.0

    assert premium(logs["lt-vcg"]) > 0.05  # truthful rent
    assert abs(premium(logs["greedy-first-price"])) < 1e-9  # pay-as-bid
