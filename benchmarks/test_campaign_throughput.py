"""Campaign-orchestration smoke: backend equivalence + work-queue scaling.

Two claims the orchestration redesign makes, checked end to end on a
stateless-mechanism sweep (cells run the batched ``run_rounds`` path, so
per-cell cost is simulation, not overhead):

1. **Equivalence** — the same sweep yields bit-identical per-cell metrics
   and identical completed-cell sets on the inline backend and on the
   work-queue backend (1 and 2 drainers).
2. **Scaling** — two work-queue drainers sustain ~2x the cell throughput
   of one.  Throughput is measured from the campaign event trail over the
   drain's busy window (first ``cell_started`` to last ``cell_finished``),
   so coordinator startup is excluded and the number is the steady-state
   drain rate.  The >=1.6x gate (2x minus scheduling-tail allowance) only
   applies on multi-core hosts — on a single core two workers cannot beat
   one, so the run records the measured ratio, reports as usual, and then
   *skips visibly* (with the core count in the reason) rather than passing
   as if the gate had been verified.

Numbers land in ``benchmarks/results/BENCH_campaign.json`` so the CI
campaign-smoke step can diff them across PRs.  ``CAMPAIGN_ROUNDS`` /
``CAMPAIGN_SEEDS`` shrink the grid for quick local runs (reduced runs are
printed but not archived).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.config import ExperimentConfig
from repro.orchestration import (
    EVENTS_NAME,
    SweepSpec,
    load_results,
    read_events,
    run_campaign,
)
from repro.utils.tables import format_table

DEFAULT_ROUNDS = 1200
DEFAULT_SEEDS = 4
TIMING_KEYS = ("sim_seconds", "rounds_per_second")

ROUNDS = int(os.environ.get("CAMPAIGN_ROUNDS", DEFAULT_ROUNDS))
SEEDS = int(os.environ.get("CAMPAIGN_SEEDS", DEFAULT_SEEDS))
IS_FULL_RUN = ROUNDS == DEFAULT_ROUNDS and SEEDS == DEFAULT_SEEDS
MULTICORE = (os.cpu_count() or 1) >= 2


def make_spec() -> SweepSpec:
    return SweepSpec(
        base=ExperimentConfig(
            num_clients=40, num_rounds=ROUNDS, max_winners=10,
            budget_per_round=2.5, v=25.0,
        ),
        mechanisms=("prop-share", "greedy-first-price"),
        seeds=tuple(range(SEEDS)),
        name="campaign-throughput",
    )


def stable_metrics(results):
    return {
        r.cell_id: {k: v for k, v in r.metrics.items() if k not in TIMING_KEYS}
        for r in results
        if r.completed
    }


def drain_stats(campaign_dir: Path) -> dict:
    """Cells/sec over the busy window of the event trail."""
    events = read_events(campaign_dir / EVENTS_NAME)
    starts = [e.timestamp for e in events if e.type == "cell_started"]
    finishes = [e.timestamp for e in events if e.type == "cell_finished"]
    window = max(finishes) - min(starts) if finishes else 0.0
    workers = {e.worker for e in events if e.type == "cell_finished"}
    return {
        "cells": len(finishes),
        "busy_seconds": window,
        "cells_per_second": len(finishes) / window if window > 0 else float("inf"),
        "workers": len(workers),
    }


def run_all():
    spec = make_spec()
    runs = {}
    metrics = {}
    with tempfile.TemporaryDirectory() as root:
        root = Path(root)
        configurations = (
            ("inline", dict(backend="inline")),
            ("queue_1w", dict(backend="work-queue", max_workers=1)),
            ("queue_2w", dict(backend="work-queue", max_workers=2)),
        )
        for label, kwargs in configurations:
            campaign_dir = root / label
            summary = run_campaign(spec, campaign_dir, **kwargs)
            assert summary.failed == 0, f"{label}: failed cells"
            assert summary.executed == spec.num_cells, f"{label}: lost cells"
            runs[label] = drain_stats(campaign_dir)
            metrics[label] = stable_metrics(load_results(campaign_dir))

    reference = metrics["inline"]
    for label, rows in metrics.items():
        assert rows == reference, f"{label}: metrics diverge from inline"
        assert set(rows) == set(reference), f"{label}: completed cells differ"

    speedup = (
        runs["queue_2w"]["cells_per_second"] / runs["queue_1w"]["cells_per_second"]
    )
    return {
        "num_cells": spec.num_cells,
        "rounds_per_cell": ROUNDS,
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "speedup_2w_vs_1w": speedup,
    }


def test_campaign_throughput(benchmark, report):
    results = run_once(benchmark, run_all)

    runs = results["runs"]
    rows = [
        [label, stats["cells"], stats["workers"], stats["busy_seconds"],
         stats["cells_per_second"]]
        for label, stats in runs.items()
    ]
    text = format_table(
        ["configuration", "cells", "workers", "drain sec", "cells/sec"],
        rows,
        title=(
            f"Campaign drain throughput ({results['num_cells']} stateless "
            f"cells x {ROUNDS} rounds, {results['cpu_count']} cores)"
        ),
    )
    text += (
        f"\n\nwork-queue speedup 2 workers vs 1: "
        f"{results['speedup_2w_vs_1w']:.2f}x"
        + ("" if MULTICORE else "  [single core: speedup not gated]")
    )
    report(
        "campaign_throughput", text,
        json_payload=results, json_id="campaign", archive=IS_FULL_RUN,
    )

    # Equivalence asserted inside run_all; here the scaling gate.
    for stats in runs.values():
        assert stats["cells"] == results["num_cells"]
    assert runs["queue_2w"]["workers"] == 2
    if not MULTICORE:
        # Everything above (equivalence, report, archive) has run; only the
        # scaling gate is impossible here, and a silent pass would misreport
        # it as verified.
        pytest.skip(
            f"single-core host (cpu_count={os.cpu_count()}): the >=1.6x "
            f"two-drainer gate needs >=2 cores; measured "
            f"{results['speedup_2w_vs_1w']:.2f}x, recorded but not gated"
        )
    assert results["speedup_2w_vs_1w"] >= 1.6, (
        f"2-worker drain only {results['speedup_2w_vs_1w']:.2f}x faster"
    )
