"""E10 [reconstructed]: ablations.

Three ablations isolating each design ingredient:

(a) **no Lyapunov** (myopic VCG): budget compliance collapses while welfare
    rises — quantifying what long-term control costs and buys;
(b) **no sustainability queues**: fairness drops, starvation rises;
(c) **non-IID severity sweep** (Dirichlet alpha): the value-aware auction's
    FL-accuracy advantage over random selection grows as the partition gets
    more skewed, because data quality varies more across clients.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism, SimulationRunner
from repro.analysis.budget import budget_report
from repro.analysis.fairness import jain_index, participation_rates, starvation_count
from repro.analysis.welfare import welfare_summary
from repro.mechanisms import MyopicVCGMechanism, RandomSelectionMechanism
from repro.simulation.scenarios import build_fl_scenario, build_mechanism_scenario
from repro.utils.tables import format_table

SEED = 101
NUM_CLIENTS = 30
ROUNDS = 400
K = 8
BUDGET = 2.0
V = 20.0
ALPHAS = (0.1, 0.5, 5.0, None)  # None = IID


def ablation_lyapunov():
    rows = []
    for name, mechanism in (
        ("lt-vcg", LongTermVCGMechanism(
            LongTermVCGConfig(v=V, budget_per_round=BUDGET, max_winners=K))),
        ("no-lyapunov", MyopicVCGMechanism(max_winners=K)),
    ):
        scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=7
        ).run(ROUNDS)
        summary = welfare_summary(log)
        rep = budget_report(log, BUDGET)
        rows.append([name, summary.total_welfare, rep.average_spend,
                     rep.final_overspend_ratio, rep.compliant])
    return rows


def ablation_sustainability():
    rows = []
    targets = {cid: 0.15 for cid in range(NUM_CLIENTS)}
    for name, participation in (("with-queues", targets), ("no-queues", None)):
        mechanism = LongTermVCGMechanism(
            LongTermVCGConfig(
                v=V, budget_per_round=BUDGET, max_winners=K,
                participation_targets=participation, sustainability_weight=5.0,
            )
        )
        scenario = build_mechanism_scenario(
            NUM_CLIENTS, seed=SEED, energy_constrained=True
        )
        log = SimulationRunner(
            mechanism, scenario.clients, scenario.valuation, seed=7
        ).run(ROUNDS)
        ids = list(range(NUM_CLIENTS))
        rates = list(participation_rates(log, ids).values())
        rows.append([
            name, welfare_summary(log).total_welfare, jain_index(rates),
            starvation_count(log, ids, minimum_rate=0.05),
        ])
    return rows


def ablation_noniid():
    """LT-VCG in its headline configuration (coverage signals on, as in E1)
    versus random selection, across partition-skew levels."""
    rows = []
    targets = {cid: 0.2 for cid in range(NUM_CLIENTS)}
    for alpha in ALPHAS:
        finals = {}
        spends = {}
        for name in ("lt-vcg", "random"):
            if name == "lt-vcg":
                mechanism = LongTermVCGMechanism(
                    LongTermVCGConfig(
                        v=V, budget_per_round=3.0, max_winners=K,
                        participation_targets=targets, sustainability_weight=5.0,
                    )
                )
            else:
                mechanism = RandomSelectionMechanism(K, np.random.default_rng(1))
            scenario = build_fl_scenario(
                NUM_CLIENTS, seed=SEED, num_samples=4000,
                dirichlet_alpha=alpha, eval_every=20,
                staleness_boost=1.0 if name == "lt-vcg" else 0.0,
            )
            log = SimulationRunner(
                mechanism, scenario.clients, scenario.valuation,
                fl=scenario.fl, seed=7,
            ).run(100)
            finals[name] = log.accuracy_series()[1][-1]
            spends[name] = log.average_payment()
        rows.append([
            "iid" if alpha is None else f"alpha={alpha}",
            finals["lt-vcg"], finals["random"],
            finals["lt-vcg"] - finals["random"],
            spends["lt-vcg"] / spends["random"],
        ])
    return rows


def run_all():
    return {
        "lyapunov": ablation_lyapunov(),
        "sustainability": ablation_sustainability(),
        "noniid": ablation_noniid(),
    }


def test_e10_ablations(benchmark, report):
    results = run_once(benchmark, run_all)

    text = format_table(
        ["variant", "total_welfare", "avg_spend", "spend/budget", "compliant"],
        results["lyapunov"],
        title="(a) Lyapunov ablation",
    )
    text += "\n\n" + format_table(
        ["variant", "total_welfare", "jain", "starved(<5%)"],
        results["sustainability"],
        title="(b) Sustainability-queue ablation (energy-constrained clients)",
    )
    text += "\n\n" + format_table(
        ["partition", "lt-vcg final acc", "random final acc", "gap", "spend ratio"],
        results["noniid"],
        title="(c) Non-IID severity sweep (100 FL rounds, coverage signals on)",
    )
    report("e10_ablations", text)

    lyapunov = {row[0]: row for row in results["lyapunov"]}
    assert lyapunov["lt-vcg"][4] is True or lyapunov["lt-vcg"][3] <= 1.1
    assert lyapunov["no-lyapunov"][3] > lyapunov["lt-vcg"][3]

    sustainability = {row[0]: row for row in results["sustainability"]}
    assert sustainability["with-queues"][2] > sustainability["no-queues"][2]

    # (c): accuracy within noise of random at every skew level, cheaper spend.
    for row in results["noniid"]:
        assert row[3] >= -0.05, f"accuracy gap too large at {row[0]}"
        assert row[4] < 1.05, f"spend not competitive at {row[0]}"
