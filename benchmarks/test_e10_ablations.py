"""E10 [reconstructed]: ablations.

Three ablations isolating each design ingredient:

(a) **no Lyapunov** (myopic VCG): budget compliance collapses while welfare
    rises — quantifying what long-term control costs and buys;
(b) **no sustainability queues**: fairness drops, starvation rises;
(c) **non-IID severity sweep** (Dirichlet alpha): the value-aware auction's
    FL-accuracy advantage over random selection grows as the partition gets
    more skewed, because data quality varies more across clients.

Runs through :mod:`repro.orchestration` (like E2/E3/E11): three declarative
campaigns — one per ablation — whose cells shard across the thread
execution backend; table rows come back from the stored per-cell metrics,
and the starvation counts of (b) from the archived event logs.  The
mechanism/participation/staleness knobs all resolve through the registry
and the ``staleness_boost`` extra, so every variant is expressible as a
grid axis instead of a hand-rolled loop.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from benchmarks.conftest import run_once
from repro.analysis.fairness import starvation_count
from repro.config import ExperimentConfig
from repro.orchestration import SweepSpec, load_results, run_campaign
from repro.simulation.replay import load_event_log
from repro.utils.tables import format_table

SEED = 101
NUM_CLIENTS = 30
ROUNDS = 400
K = 8
BUDGET = 2.0
V = 20.0
ALPHAS = (0.1, 0.5, 5.0, None)  # None = IID


def _run(spec: SweepSpec, *, load_logs: bool = False):
    """Execute one ablation campaign; returns its completed CellResults.

    ``load_logs`` attaches each cell's archived event log (for metrics the
    summary row does not carry, e.g. starvation counts).
    """
    with tempfile.TemporaryDirectory() as campaign_dir:
        summary = run_campaign(spec, campaign_dir, backend="thread", max_workers=2)
        assert summary.failed == 0, f"{spec.name} campaign had failed cells"
        results = load_results(campaign_dir)
        logs = {}
        if load_logs:
            for result in results:
                assert result.event_log_path is not None
                logs[result.cell_id] = load_event_log(Path(result.event_log_path))
    return results, logs


def ablation_lyapunov():
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=NUM_CLIENTS, num_rounds=ROUNDS, max_winners=K,
            budget_per_round=BUDGET, v=V, seed=SEED,
        ),
        mechanisms=("lt-vcg", "myopic-vcg"),
        seeds=(SEED,),
        name="e10-lyapunov",
    )
    results, _ = _run(spec)
    rows = []
    for result in results:
        name = "lt-vcg" if result.mechanism == "lt-vcg" else "no-lyapunov"
        metrics = result.metrics
        rows.append([
            name, metrics["total_welfare"], metrics["average_payment"],
            metrics["spend_over_budget"], bool(metrics["budget_compliant"]),
        ])
    return rows


def ablation_sustainability():
    spec = SweepSpec(
        base=ExperimentConfig(
            num_clients=NUM_CLIENTS, num_rounds=ROUNDS, max_winners=K,
            budget_per_round=BUDGET, v=V, seed=SEED,
            sustainability_weight=5.0,
        ),
        mechanisms=("lt-vcg",),
        scenarios=("energy",),
        seeds=(SEED,),
        params={"participation_target": (0.15, 0.0)},
        name="e10-sustainability",
    )
    results, logs = _run(spec, load_logs=True)
    ids = list(range(NUM_CLIENTS))
    rows = []
    for result in results:
        name = (
            "with-queues"
            if float(result.params["participation_target"]) > 0
            else "no-queues"
        )
        rows.append([
            name,
            result.metrics["total_welfare"],
            result.metrics["jain_index"],
            starvation_count(logs[result.cell_id], ids, minimum_rate=0.05),
        ])
    return sorted(rows, key=lambda row: row[0], reverse=True)


def ablation_noniid():
    """LT-VCG in its headline configuration (coverage signals on, as in E1)
    versus random selection, across partition-skew levels."""
    base = ExperimentConfig(
        num_clients=NUM_CLIENTS, num_rounds=100, max_winners=K,
        budget_per_round=3.0, v=V, seed=SEED,
        num_samples=4000, eval_every=20,
    )
    # Two specs instead of a full cross: the coverage signal
    # (staleness_boost) belongs to the LT-VCG configuration only, so it
    # rides each spec's base extras rather than a swept axis.
    specs = {
        "lt-vcg": SweepSpec(
            base=base.with_overrides(
                participation_target=0.2, sustainability_weight=5.0,
                extras={"staleness_boost": 1.0},
            ),
            mechanisms=("lt-vcg",),
            scenarios=("fl",),
            seeds=(SEED,),
            params={"dirichlet_alpha": ALPHAS},
            name="e10-noniid",
        ),
        "random": SweepSpec(
            base=base,
            mechanisms=("random",),
            scenarios=("fl",),
            seeds=(SEED,),
            params={"dirichlet_alpha": ALPHAS},
            name="e10-noniid-baseline",
        ),
    }
    finals: dict[tuple[str, object], float] = {}
    spends: dict[tuple[str, object], float] = {}
    for name, spec in specs.items():
        results, _ = _run(spec)
        for result in results:
            alpha = result.params["dirichlet_alpha"]
            finals[(name, alpha)] = result.metrics["final_accuracy"]
            spends[(name, alpha)] = result.metrics["average_payment"]
    rows = []
    for alpha in ALPHAS:
        rows.append([
            "iid" if alpha is None else f"alpha={alpha}",
            finals[("lt-vcg", alpha)], finals[("random", alpha)],
            finals[("lt-vcg", alpha)] - finals[("random", alpha)],
            spends[("lt-vcg", alpha)] / spends[("random", alpha)],
        ])
    return rows


def run_all():
    return {
        "lyapunov": ablation_lyapunov(),
        "sustainability": ablation_sustainability(),
        "noniid": ablation_noniid(),
    }


def test_e10_ablations(benchmark, report):
    results = run_once(benchmark, run_all)

    text = format_table(
        ["variant", "total_welfare", "avg_spend", "spend/budget", "compliant"],
        results["lyapunov"],
        title="(a) Lyapunov ablation",
    )
    text += "\n\n" + format_table(
        ["variant", "total_welfare", "jain", "starved(<5%)"],
        results["sustainability"],
        title="(b) Sustainability-queue ablation (energy-constrained clients)",
    )
    text += "\n\n" + format_table(
        ["partition", "lt-vcg final acc", "random final acc", "gap", "spend ratio"],
        results["noniid"],
        title="(c) Non-IID severity sweep (100 FL rounds, coverage signals on)",
    )
    report("e10_ablations", text)

    lyapunov = {row[0]: row for row in results["lyapunov"]}
    assert lyapunov["lt-vcg"][4] is True or lyapunov["lt-vcg"][3] <= 1.1
    assert lyapunov["no-lyapunov"][3] > lyapunov["lt-vcg"][3]

    sustainability = {row[0]: row for row in results["sustainability"]}
    assert sustainability["with-queues"][2] > sustainability["no-queues"][2]

    # (c): accuracy within noise of random at every skew level, cheaper spend.
    for row in results["noniid"]:
        assert row[3] >= -0.05, f"accuracy gap too large at {row[0]}"
        assert row[4] < 1.05, f"spend not competitive at {row[0]}"
