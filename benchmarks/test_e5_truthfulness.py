"""E5 [reconstructed]: truthfulness under bid deviation.

Table analogue: the utility a client obtains when misreporting its cost by a
factor of 0.5x-4x, holding everyone else truthful.  Expected shape: under
LT-VCG (exact and greedy winner determination) the maximum deviation gain is
zero to numerical precision; under pay-as-bid greedy the best overbid earns
a strictly positive premium — the paper's motivation for VCG payments.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import LongTermVCGConfig, LongTermVCGMechanism
from repro.core.properties import verify_truthfulness
from repro.mechanisms import FixedPriceMechanism, GreedyFirstPriceMechanism
from repro.simulation.scenarios import build_mechanism_scenario
from repro.utils.tables import format_table

SEED = 57
NUM_CLIENTS = 20
K = 6
BUDGET = 3.0
FACTORS = (0.5, 0.8, 0.9, 1.1, 1.25, 1.5, 2.0, 4.0)


def build_instance():
    """A truthful single-round instance from the canonical population."""
    scenario = build_mechanism_scenario(NUM_CLIENTS, seed=SEED)
    bids = tuple(client.make_bid(0) for client in scenario.clients)
    values = scenario.valuation.values_for(bids)
    from repro.core.bids import AuctionRound

    auction_round = AuctionRound(index=0, bids=bids, values=values)
    return auction_round, scenario.true_costs()


def factories():
    return {
        "lt-vcg (exact)": lambda: LongTermVCGMechanism(
            LongTermVCGConfig(v=20.0, budget_per_round=BUDGET, max_winners=K)
        ),
        "lt-vcg (greedy)": lambda: LongTermVCGMechanism(
            LongTermVCGConfig(
                v=20.0, budget_per_round=BUDGET, max_winners=K, wd_method="greedy"
            )
        ),
        "greedy-first-price": lambda: GreedyFirstPriceMechanism(BUDGET, K),
        "fixed-price": lambda: FixedPriceMechanism(price=0.8, max_winners=K),
    }


def run_all():
    auction_round, true_costs = build_instance()
    reports = {}
    for name, factory in factories().items():
        reports[name] = verify_truthfulness(
            factory, auction_round, true_costs,
            deviation_factors=FACTORS, tolerance=1e-6,
        )
    return reports


def test_e5_truthfulness(benchmark, report):
    reports = run_once(benchmark, run_all)

    rows = []
    for name, rep in reports.items():
        best_gain_by_factor = {}
        for record in rep.records:
            factor = record.deviated_bid / record.true_cost
            key = round(factor, 3)
            best_gain_by_factor[key] = max(
                best_gain_by_factor.get(key, -np.inf), record.gain
            )
        rows.append(
            [name, rep.max_gain, rep.is_truthful]
            + [best_gain_by_factor.get(round(f, 3), 0.0) for f in FACTORS]
        )
    text = format_table(
        ["mechanism", "max_gain", "truthful"] + [f"gain@{f}x" for f in FACTORS],
        rows,
        title="Best unilateral deviation gain by misreport factor",
        float_fmt=".3g",
    )
    report("e5_truthfulness", text)

    assert reports["lt-vcg (exact)"].is_truthful
    assert reports["lt-vcg (greedy)"].is_truthful
    assert reports["fixed-price"].is_truthful
    assert not reports["greedy-first-price"].is_truthful
    # The manipulable baseline's best gain is economically significant.
    assert reports["greedy-first-price"].max_gain > 0.01
