"""FL local-training throughput: batched engine vs. the scalar loop.

Measures one federated round's local-training phase — every client's
local-SGD steps plus update assembly — through three engines at growing
client counts:

* **legacy** — the pre-batching scalar loop reconstructed inline (per-step
  ``rng.choice`` minibatch draws, one Python loop per client, list-of-update
  stacking), the baseline this PR's engine replaced;
* **sequential** — :class:`repro.fl.batch.SequentialLocalSolver`, the
  current scalar reference (already faster than legacy: one round-plan rng
  draw per client);
* **vectorized** — :class:`repro.fl.batch.VectorizedLocalSolver`, the
  stacked leading-client-axis engine;
* **lean** — the same engine in the bandwidth-lean data-plane
  configuration (float32 shard/minibatch storage with float64 compute,
  128-client chunked stacked pipelines) — the memory-bound setting for
  1000-client federations.

Populations come from :func:`repro.simulation.scenarios.build_fl_scenario`
with the ``samples_per_client`` scaling knob, so the data pool grows with
the federation up to 1000 clients, and an IID partition — uniform shard
sizes isolate engine throughput from partition skew (the equivalence suite
covers the skewed partitions).  Results are archived to
``results/BENCH_fl.json`` so the
batched-vs-scalar trajectory is tracked across PRs.  Set ``FL_SIZES``
(comma-separated client counts) to shrink the sweep — CI runs a perf-smoke
pass at ``FL_SIZES=40,100`` (below the 200-client acceptance gate, which
only full sweeps enforce — the same pattern as the E9 smoke).

Expected shape: the vectorized engine beats the legacy loop >= 5x at 200
clients on the softmax model (the per-client Python overhead the stack
amortises), stays ahead at 1000 clients, and per-client equivalence with
the sequential engine holds to tight tolerance (the full property suite
lives in tests/fl/test_local_solvers.py).  On the CNN family — stacked
through the conv kernels, off the scalar fallback — the lean data plane
holds clients/sec at 1000 clients at the 200-client figure (the old
float64 gather path *fell* >10% over that span; the gate asserts the
falloff is gone, with a small allowance for single-core timing noise).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro import kernels
from repro.fl.aggregation import stack_updates
from repro.fl.batch import SequentialLocalSolver, VectorizedLocalSolver
from repro.fl.client import ClientUpdate
from repro.simulation.scenarios import build_fl_scenario
from repro.utils.tables import format_table

SEED = 31
DEFAULT_SIZES = (40, 200, 1000)
SIZES = tuple(
    int(s) for s in os.environ.get("FL_SIZES", "").split(",") if s.strip()
) or DEFAULT_SIZES
MODELS = ("softmax", "mlp", "cnn")
SAMPLES_PER_CLIENT = 40
ROUNDS = 3
TRIALS = 3


def federation(num_clients: int, model: str):
    """(server, clients) from the canonical scenario at this scale."""
    scenario = build_fl_scenario(
        num_clients,
        seed=SEED,
        samples_per_client=SAMPLES_PER_CLIENT,
        dirichlet_alpha=None,
        model=model,
    )
    attachment = scenario.fl
    clients = [attachment.fl_clients[cid] for cid in sorted(attachment.fl_clients)]
    return attachment.server, clients


def legacy_round(clients, global_params):
    """The pre-batching local phase: per-step choice draws, scalar loops."""
    updates = []
    for client in clients:
        client.model.set_params(global_params)
        optimizer = client.optimizer_factory()
        params = client.model.get_params()
        loss = 0.0
        for _ in range(client.local_steps):
            indices = client.rng.choice(
                client.dataset.num_samples, size=client.batch_size, replace=False
            )
            client.model.set_params(params)
            loss, grad = client.model.loss_and_grad(
                client.dataset.features[indices], client.dataset.labels[indices]
            )
            params = optimizer.step(params, grad)
        client.model.set_params(params)
        updates.append(
            ClientUpdate(
                client_id=client.client_id,
                delta=params - global_params,
                num_samples=client.num_samples,
                final_loss=float(loss),
            )
        )
    stack_updates([update.delta for update in updates])


def best_round_seconds(round_fn) -> float:
    """Best mean round time over TRIALS timed batches (1 warm round)."""
    round_fn()
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        for _ in range(ROUNDS):
            round_fn()
        best = min(best, (time.perf_counter() - start) / ROUNDS)
    return best


def time_engines(num_clients: int, model: str) -> dict:
    server, _ = federation(num_clients, model)
    global_params = server.global_params()

    _, legacy_clients = federation(num_clients, model)
    legacy = best_round_seconds(lambda: legacy_round(legacy_clients, global_params))

    _, seq_clients = federation(num_clients, model)
    seq_solver = SequentialLocalSolver()
    sequential = best_round_seconds(
        lambda: seq_solver.train(seq_clients, global_params)
    )

    _, vec_clients = federation(num_clients, model)
    vec_solver = VectorizedLocalSolver()
    vectorized = best_round_seconds(
        lambda: vec_solver.train(vec_clients, global_params)
    )

    _, lean_clients = federation(num_clients, model)
    lean_solver = VectorizedLocalSolver(
        storage_dtype=np.float32, chunk_clients=128
    )
    lean = best_round_seconds(lambda: lean_solver.train(lean_clients, global_params))

    return {
        "model": model,
        "n": num_clients,
        "legacy_ms": legacy * 1e3,
        "sequential_ms": sequential * 1e3,
        "vectorized_ms": vectorized * 1e3,
        "lean_ms": lean * 1e3,
        "clients_per_sec": num_clients / vectorized,
        "lean_clients_per_sec": num_clients / lean,
        "speedup_vs_legacy": legacy / vectorized,
        "speedup_vs_sequential": sequential / vectorized,
    }


def check_equivalence(model: str) -> float:
    """Max |batched - scalar| per-client delta error at the smallest size."""
    n = min(SIZES)
    server, seq_clients = federation(n, model)
    _, vec_clients = federation(n, model)
    global_params = server.global_params()
    sequential = SequentialLocalSolver().train(seq_clients, global_params)
    vectorized = VectorizedLocalSolver().train(vec_clients, global_params)
    return float(np.abs(sequential.deltas - vectorized.deltas).max())


def run_all():
    rows = [time_engines(n, model) for model in MODELS for n in SIZES]
    errors = {model: check_equivalence(model) for model in MODELS}
    return rows, errors


def test_fl_training_throughput(benchmark, report):
    rows, errors = run_once(benchmark, run_all)

    text = format_table(
        [
            "model",
            "clients",
            "legacy (ms)",
            "sequential (ms)",
            "vectorized (ms)",
            "lean (ms)",
            "clients/s",
            "lean clients/s",
            "vs legacy",
            "vs sequential",
        ],
        [
            [r["model"], r["n"], r["legacy_ms"], r["sequential_ms"],
             r["vectorized_ms"], r["lean_ms"], r["clients_per_sec"],
             r["lean_clients_per_sec"], r["speedup_vs_legacy"],
             r["speedup_vs_sequential"]]
            for r in rows
        ],
        title="Local-training round latency vs. client count",
    )
    text += "\n\nmax |batched - scalar| per-client delta error: " + ", ".join(
        f"{model}={error:.3g}" for model, error in errors.items()
    )
    payload = {
        "experiment": "fl_training",
        "unit": "ms_per_round",
        "config": {
            "seed": SEED,
            "sizes": list(SIZES),
            "samples_per_client": SAMPLES_PER_CLIENT,
            "rounds": ROUNDS,
            "trials": TRIALS,
            "backend": kernels.active_backend().name,
            "lean": {"storage_dtype": "float32", "chunk_clients": 128},
        },
        "rows": [
            {
                key: (value if key in ("model", "n") else round(value, 3))
                for key, value in r.items()
            }
            for r in rows
        ],
        "equivalence_max_abs_error": {
            model: float(error) for model, error in errors.items()
        },
    }
    # Reduced FL_SIZES sweeps (CI smoke) must not overwrite the committed
    # full-sweep baselines.
    report(
        "fl_training",
        text,
        json_payload=payload,
        json_id="fl",
        archive=SIZES == DEFAULT_SIZES,
    )

    # Batched and scalar local training agree per client on both families.
    for model, error in errors.items():
        assert error < 1e-9, f"{model} batched/scalar divergence: {error}"
    for r in rows:
        # The stacked engine never loses to either scalar loop.
        assert r["speedup_vs_legacy"] > 1.0, r
        assert r["speedup_vs_sequential"] > 1.0, r
        if r["model"] == "softmax" and r["n"] == 200:
            # Acceptance gate for the vectorized FL engine: >= 5x the
            # pre-batching scalar loop at 200 clients on the linear model.
            # (At 1000 clients the gathers stream ~80 MB of minibatches per
            # round and the ratio is honestly memory-bound lower; it is
            # recorded, not gated.)
            assert r["speedup_vs_legacy"] >= 5.0, r
    by_key = {(r["model"], r["n"]): r for r in rows}
    if ("cnn", 200) in by_key and ("cnn", 1000) in by_key:
        # Acceptance gate for the bandwidth-lean data plane: on the CNN
        # family (stacked through the conv kernels, off the scalar
        # fallback) throughput does not degrade from 200 to 1000 clients —
        # float32 storage + 128-client chunking keep each chunk's working
        # set cache-resident, so per-client cost is flat in federation
        # size (the old float64 gather path fell >10% over this span).
        # Flat-in-expectation means the two figures are statistically
        # tied; the 3% allowance is single-host timing noise, not a
        # permitted slowdown.
        assert (
            by_key[("cnn", 1000)]["lean_clients_per_sec"]
            >= 0.97 * by_key[("cnn", 200)]["lean_clients_per_sec"]
        ), (by_key[("cnn", 200)], by_key[("cnn", 1000)])
